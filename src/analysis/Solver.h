//===- Solver.h - Subset-constraint propagation engine ----------*- C++ -*-===//
///
/// \file
/// The propagation core of the points-to analysis: adaptive points-to sets
/// (AdaptiveSet of TokenIds; --solver-set=dense pins the classic word-array
/// representation) per constraint variable, subset edges, and
/// listeners. Listeners implement the "complex" constraints (property
/// accesses, calls, builtin models): they run exactly once per
/// (listener, token) pair — for tokens already present at registration time
/// and for every token that arrives later — so constraint generation is
/// fully on-the-fly. Exactly-once delivery is guaranteed by a per-listener
/// delivered-set; listeners no longer need to be idempotent for
/// correctness (all built-in effects happen to be idempotent anyway).
///
/// The engine is built for cycle-heavy constraint graphs:
///
///  - **Online cycle collapsing** (Nuutila / Hardekopf–Lin lazy cycle
///    detection): variables are grouped under union-find representatives.
///    When a propagation step makes no change across an edge whose endpoint
///    sets are equal, a bounded DFS looks for a cycle through that edge and
///    merges all members into one representative (points-to sets, successor
///    lists, and listeners are spliced together), so tokens stop circulating
///    the cycle.
///  - **Hashed edge dedup**: duplicate subset edges (common: one per
///    resolved token) are rejected by a hash-set probe instead of a linear
///    scan of the successor list.
///  - **Delta batching**: pending tokens are accumulated per variable in a
///    set delta and flushed as one word-parallel union per successor,
///    instead of one worklist entry per (variable, token) pair.
///
/// All iteration orders are index-based and hash containers are never
/// iterated, so solving is fully deterministic: two identical constraint
/// streams produce identical points-to sets and identical SolverStats.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_SOLVER_H
#define JSAI_ANALYSIS_SOLVER_H

#include "analysis/ConstraintVar.h"
#include "support/AdaptiveSet.h"
#include "support/Cancellation.h"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

namespace jsai {

/// Insert-only open-addressing set of nonzero 64-bit keys (the solver's
/// edge keys — (From << 32) | To with From != To — are never zero). One
/// flat power-of-two array, linear probing, no per-node allocation; never
/// iterated, so it cannot affect determinism.
class EdgeKeySet {
public:
  /// \returns true if \p Key was newly inserted.
  bool insert(uint64_t Key) {
    if (Slots.empty() || Count * 4 >= Slots.size() * 3)
      grow();
    size_t I = slotFor(Key);
    if (Slots[I] == Key)
      return false;
    Slots[I] = Key;
    ++Count;
    return true;
  }

  bool contains(uint64_t Key) const {
    if (Slots.empty())
      return false;
    return Slots[slotFor(Key)] == Key;
  }

private:
  /// First slot holding \p Key or empty (0), probing linearly.
  size_t slotFor(uint64_t Key) const {
    // SplitMix64 finalizer: edge keys are consecutive id pairs, so they
    // need real mixing to spread across slots.
    uint64_t H = Key;
    H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ULL;
    H = (H ^ (H >> 27)) * 0x94D049BB133111EBULL;
    H ^= H >> 31;
    size_t Mask = Slots.size() - 1;
    size_t I = size_t(H) & Mask;
    while (Slots[I] != 0 && Slots[I] != Key)
      I = (I + 1) & Mask;
    return I;
  }

  void grow() {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 64 : Old.size() * 2, 0);
    for (uint64_t Key : Old)
      if (Key != 0)
        Slots[slotFor(Key)] = Key;
  }

  std::vector<uint64_t> Slots;
  size_t Count = 0;
};

/// Statistics for the evaluation section (analysis cost).
struct SolverStats {
  /// Tokens flushed out of per-variable delta batches (each token counts
  /// once per variable it newly reached).
  uint64_t NumTokensPropagated = 0;
  /// Unique subset edges added.
  uint64_t NumEdges = 0;
  /// Duplicate addEdge calls rejected by the hashed probe.
  uint64_t NumDuplicateEdges = 0;
  /// Listener registrations.
  uint64_t NumListeners = 0;
  /// Cycle-collapse events (each merges >= 2 variables).
  uint64_t NumCyclesCollapsed = 0;
  /// Variables folded into another representative by collapsing.
  uint64_t NumVarsMerged = 0;
  /// Delta batches flushed by the solve loop.
  uint64_t NumBatchesFlushed = 0;

  // Constraint-group retraction (incremental re-analysis support). These
  // are never emitted in reports — retraction is an opt-in warm-solve mode
  // and default telemetry must not depend on whether it was exercised.
  uint64_t NumGroupRetractions = 0;
  uint64_t NumRetractionRefusals = 0;

  // Set-memory accounting (refreshed by Solver::stats()). Heap capacity
  // bytes owned by every points-to / delta / delivered set of this solver;
  // the inline small tier books zero bytes, which is the saving being
  // measured. Deterministic for identical constraint streams (vector
  // capacity growth is deterministic in-process), but representation-
  // dependent — reports gate these behind --report-timings.
  uint64_t SetBytesLive = 0;
  uint64_t SetBytesPeak = 0;
  uint64_t SetTierPromotionsSparse = 0;
  uint64_t SetTierPromotionsDense = 0;
  /// Tier histogram over non-empty representative points-to sets.
  uint64_t SetsSmall = 0;
  uint64_t SetsSparse = 0;
  uint64_t SetsDense = 0;

  friend bool operator==(const SolverStats &, const SolverStats &) = default;
};

/// Tag for a retractable batch of constraints (one per module in the
/// incremental-solve path). Group 0 is the shared/ungrouped default.
using ConstraintGroup = uint32_t;

/// Subset-constraint solver.
class Solver {
public:
  using Listener = std::function<void(TokenId)>;

  Solver();

  /// Selects the set representation for this solver's points-to machinery
  /// (default: the process-wide defaultSolverSetKind()). Call before
  /// adding constraints: switching to Dense migrates existing sets, but
  /// Dense -> Adaptive cannot unpin sets already forced dense.
  void setSetKind(SolverSetKind K);
  SolverSetKind setKind() const { return SetKind; }

  /// Adds t to [[V]]; schedules propagation.
  void addToken(CVarId V, TokenId T);

  /// Adds the subset edge [[From]] subseteq [[To]]. Tokens already in
  /// [[From]] reach [[To]]'s set immediately (batched); listeners observe
  /// them at the next solve(), exactly as for in-solve edge additions.
  void addEdge(CVarId From, CVarId To);

  /// Registers \p L on \p V: runs exactly once per (listener, token) pair,
  /// for every current token (replayed now) and every future one.
  void addListener(CVarId V, Listener L);

  /// Runs propagation to a fixpoint. Re-entrant calls (from listeners)
  /// are no-ops; the outer loop drains all work.
  void solve();

  /// Installs a deadline token polled once per worklist pop. When it
  /// expires, solve() stops at a well-defined partial fixpoint: every
  /// token already flushed has been fully delivered, pending deltas stay
  /// queued. \returns via wasCancelled() whether the last solve stopped
  /// early.
  void setCancellation(CancellationToken *T) { Cancel = T; }
  bool wasCancelled() const { return Cancelled; }

  /// --- Constraint-group retraction (incremental re-analysis) ---
  ///
  /// Tagging: every edge and listener added while a nonzero group is
  /// current belongs to that group; constraints a listener derives inherit
  /// the firing listener's group. retractGroup(G) then removes G's edges
  /// and listeners so a new version of G's constraints can be re-added
  /// against the warm state.
  ///
  /// Soundness model: retraction is a *sound over-approximation*, not exact
  /// deletion. Tokens G already propagated are never withdrawn (exact
  /// withdrawal is delete-and-rederive over the whole graph — a cold
  /// solve); they linger as extra may-facts, so a warm retract-and-readd
  /// fixpoint is always a superset of the cold one and never misses a
  /// fact. Removal itself must still be exact, which fails in two cases
  /// that make retractGroup() refuse (caller falls back to a cold solve):
  ///  - any cycle collapse since tracking began (collapse splices and
  ///    dedups successor lists, destroying edge attribution), and
  ///  - a cross-group duplicate edge (the hashed dedup keeps one physical
  ///    edge for two owners; removing it for one would drop the other's).
  ///
  /// First nonzero setGroup() enables tracking; until then none of the
  /// bookkeeping below costs anything.
  void setGroup(ConstraintGroup G);
  ConstraintGroup currentGroup() const { return CurGroup; }
  /// Whether retractGroup(\p G) would succeed right now.
  bool canRetract(ConstraintGroup G) const;
  /// Removes \p G's edges and listeners as described above. \returns false
  /// (and changes nothing) when removal would be unsound; the caller must
  /// then rebuild from scratch.
  bool retractGroup(ConstraintGroup G);

  const AdaptiveSet &pointsTo(CVarId V) const;
  /// Engine counters plus set-memory accounting. Non-const: the memory
  /// fields and tier histogram are refreshed from the live sets on each
  /// call.
  const SolverStats &stats();

  /// The union-find representative currently standing for \p V (exposed
  /// for tests and diagnostics; stable only between solve() calls).
  CVarId representative(CVarId V) const { return findConst(V); }

private:
  /// One registered listener with its exactly-once delivery record. The
  /// callable lives behind a shared_ptr: callbacks may register further
  /// listeners (reallocating the record vectors), so invocation goes
  /// through a cheap handle copy instead of copying the std::function.
  struct ListenerRecord {
    std::shared_ptr<Listener> Fn;
    AdaptiveSet Delivered; ///< Tokens already handed to Fn.
    ConstraintGroup Group = 0; ///< Owning group (0 = shared, irretractable).
  };

  void ensure(CVarId V);
  CVarId find(CVarId V);
  CVarId findConst(CVarId V) const;
  void schedule(CVarId R);
  /// Unions \p Ts into [[To]] (a representative), extending its delta with
  /// the newly inserted tokens. \returns true if the set changed.
  bool insertTokens(CVarId To, const AdaptiveSet &Ts);
  /// Rewrites Succs[V] to canonical representatives, dropping self-loops
  /// and duplicates introduced by collapsing.
  void canonicalizeSuccs(CVarId V);
  /// Flushes V's pending delta to successors and listeners, recording
  /// lazy-cycle-detection candidates in \p Candidates.
  void flush(CVarId V, std::vector<std::pair<CVarId, CVarId>> &Candidates);
  /// If To still reaches From, collapses every variable on the found
  /// From -> To -> ... -> From cycle into one representative.
  void collapseCycle(CVarId From, CVarId To);

  static uint64_t edgeKey(CVarId From, CVarId To) {
    return (uint64_t(From) << 32) | uint64_t(To);
  }

  /// Representation policy for every set this solver creates.
  SolverSetKind SetKind = defaultSolverSetKind();
  /// Shared accounting block for every set below. Declared before them so
  /// it outlives their destructors (each books its bytes back out).
  SetMemoryStats SetMem;

  // Per-variable state; entries are authoritative only for union-find
  // representatives (merged members' storage is released on collapse).
  std::vector<CVarId> Parent;  ///< Union-find forest (path-halving).
  std::vector<AdaptiveSet> PointsTo;
  std::vector<AdaptiveSet> Delta; ///< Tokens inserted but not yet flushed.
  std::vector<std::vector<CVarId>> Succs;
  std::vector<std::vector<ListenerRecord>> Listeners;

  /// FIFO worklist of variables with a non-empty delta.
  std::deque<CVarId> Worklist;
  std::vector<bool> InWorklist;

  /// Hashed (From, To) pairs backing O(1) duplicate-edge rejection. Never
  /// iterated (determinism); keys use the representatives at insert time,
  /// canonicalizeSuccs refreshes them after collapses.
  EdgeKeySet EdgeSet;
  /// Edges already submitted to cycle detection (Hardekopf–Lin style:
  /// each edge triggers at most one DFS).
  EdgeKeySet CheckedEdges;

  SolverStats Stats;
  AdaptiveSet Empty;
  /// Reusable storage for the delta being flushed. flush() is never
  /// re-entered (solve() re-entry is a no-op and collapses are deferred),
  /// so one scratch set suffices; recycling it avoids a word-array
  /// allocation per flush on small graphs.
  AdaptiveSet FlushScratch;
  bool Solving = false;

  /// Optional deadline token (not owned); see setCancellation().
  CancellationToken *Cancel = nullptr;
  bool Cancelled = false;

  // --- Group-retraction state (all inert until the first setGroup()) ---
  ConstraintGroup CurGroup = 0;
  bool Tracking = false;
  /// Any collapse after tracking began destroys edge attribution for every
  /// group; retraction then refuses across the board.
  bool CollapsedWhileTracking = false;
  std::set<ConstraintGroup> TaintedGroups;
  /// Per-group log of (From, To) representatives at insert time. Valid for
  /// removal only while no collapse has happened (checked above).
  std::map<ConstraintGroup, std::vector<std::pair<CVarId, CVarId>>> EdgeLog;
  /// Edge key -> owning group, for cross-group duplicate detection.
  std::map<uint64_t, ConstraintGroup> EdgeOwner;
  /// Keys removed by retraction. EdgeKeySet is insert-only, so a re-added
  /// edge probes here to be treated as fresh instead of duplicate.
  std::set<uint64_t> RemovedEdges;
};

} // namespace jsai

#endif // JSAI_ANALYSIS_SOLVER_H
