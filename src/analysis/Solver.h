//===- Solver.h - Subset-constraint propagation engine ----------*- C++ -*-===//
///
/// \file
/// The propagation core of the points-to analysis: adaptive points-to sets
/// (AdaptiveSet of TokenIds; --solver-set=dense pins the classic word-array
/// representation) per constraint variable, subset edges, and
/// listeners. Listeners implement the "complex" constraints (property
/// accesses, calls, builtin models): they run exactly once per
/// (listener, token) pair — for tokens already present at registration time
/// and for every token that arrives later — so constraint generation is
/// fully on-the-fly. Exactly-once delivery is guaranteed by a per-listener
/// delivered-set; listeners no longer need to be idempotent for
/// correctness (all built-in effects happen to be idempotent anyway).
///
/// The engine is built for cycle-heavy constraint graphs:
///
///  - **Online cycle collapsing** (Nuutila / Hardekopf–Lin lazy cycle
///    detection): variables are grouped under union-find representatives.
///    When a propagation step makes no change across an edge whose endpoint
///    sets are equal, a bounded DFS looks for a cycle through that edge and
///    merges all members into one representative (points-to sets, successor
///    lists, and listeners are spliced together), so tokens stop circulating
///    the cycle.
///  - **Hashed edge dedup**: duplicate subset edges (common: one per
///    resolved token) are rejected by a hash-set probe instead of a linear
///    scan of the successor list.
///  - **Delta batching**: pending tokens are accumulated per variable in a
///    set delta and flushed as one word-parallel union per successor,
///    instead of one worklist entry per (variable, token) pair.
///
/// All iteration orders are index-based and hash containers are never
/// iterated, so solving is fully deterministic: two identical constraint
/// streams produce identical points-to sets and identical SolverStats.
///
/// **Parallel solving** (setJobs(N) / --solver-jobs=N, default 1): the
/// fixpoint loop processes the worklist in *waves*. A wave snapshots the
/// queued variables, precomputes — in parallel, strictly read-only — the
/// per-edge token sets each pending delta would newly contribute to each
/// successor, then *commits* the wave on one thread by replaying the exact
/// sequential pop/flush/collapse order, substituting a precomputed result
/// wherever it is still valid (no cycle collapse since the snapshot, the
/// source delta unchanged). Because the commit loop IS the sequential loop
/// and a skipped all-duplicate word union is a no-op on every AdaptiveSet
/// tier, points-to growth, listener delivery order, SolverStats, and even
/// the set-memory capacity trajectory are byte-identical to the
/// single-threaded solve at any thread count. Wave/thread counters live in
/// SolverParallelStats, deliberately outside SolverStats.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_ANALYSIS_SOLVER_H
#define JSAI_ANALYSIS_SOLVER_H

#include "analysis/ConstraintVar.h"
#include "support/AdaptiveSet.h"
#include "support/Cancellation.h"
#include "support/WorkerPool.h"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

namespace jsai {

/// Process-wide default thread budget for newly constructed solvers'
/// fixpoint loops. Initialized once from the JSAI_SOLVER_JOBS environment
/// variable (an integer; absent, empty, or < 2 means 1 = sequential) so
/// benches and the golden-metrics gate can be swept across thread counts
/// without per-binary flag plumbing; the CLI's --solver-jobs= overrides it
/// at startup. Set it before spawning workers — reads after that are
/// unsynchronized.
size_t defaultSolverJobs();
void setDefaultSolverJobs(size_t N);

/// Process-wide default for provenance recording in newly constructed
/// solvers (the `--explain=off|record` toggle). Initialized once from the
/// JSAI_EXPLAIN environment variable ("record" or "1" enables it; absent
/// or anything else means off) so the golden-metrics gate can assert
/// metric invariance under recording without per-binary flag plumbing;
/// the CLI's --explain= overrides it at startup. Set it before spawning
/// workers — reads after that are unsynchronized.
bool defaultExplainRecording();
void setDefaultExplainRecording(bool On);

/// Insert-only open-addressing set of nonzero 64-bit keys (the solver's
/// edge keys — (From << 32) | To with From != To — are never zero). One
/// flat power-of-two array, linear probing, no per-node allocation; never
/// iterated, so it cannot affect determinism.
class EdgeKeySet {
public:
  /// \returns true if \p Key was newly inserted.
  bool insert(uint64_t Key) {
    if (Slots.empty() || Count * 4 >= Slots.size() * 3)
      grow();
    size_t I = slotFor(Key);
    if (Slots[I] == Key)
      return false;
    Slots[I] = Key;
    ++Count;
    return true;
  }

  bool contains(uint64_t Key) const {
    if (Slots.empty())
      return false;
    return Slots[slotFor(Key)] == Key;
  }

private:
  /// First slot holding \p Key or empty (0), probing linearly.
  size_t slotFor(uint64_t Key) const {
    // SplitMix64 finalizer: edge keys are consecutive id pairs, so they
    // need real mixing to spread across slots.
    uint64_t H = Key;
    H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ULL;
    H = (H ^ (H >> 27)) * 0x94D049BB133111EBULL;
    H ^= H >> 31;
    size_t Mask = Slots.size() - 1;
    size_t I = size_t(H) & Mask;
    while (Slots[I] != 0 && Slots[I] != Key)
      I = (I + 1) & Mask;
    return I;
  }

  void grow() {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 64 : Old.size() * 2, 0);
    for (uint64_t Key : Old)
      if (Key != 0)
        Slots[slotFor(Key)] = Key;
  }

  std::vector<uint64_t> Slots;
  size_t Count = 0;
};

/// Statistics for the evaluation section (analysis cost).
struct SolverStats {
  /// Tokens flushed out of per-variable delta batches (each token counts
  /// once per variable it newly reached).
  uint64_t NumTokensPropagated = 0;
  /// Unique subset edges added.
  uint64_t NumEdges = 0;
  /// Duplicate addEdge calls rejected by the hashed probe.
  uint64_t NumDuplicateEdges = 0;
  /// Listener registrations.
  uint64_t NumListeners = 0;
  /// Cycle-collapse events (each merges >= 2 variables).
  uint64_t NumCyclesCollapsed = 0;
  /// Variables folded into another representative by collapsing.
  uint64_t NumVarsMerged = 0;
  /// Delta batches flushed by the solve loop.
  uint64_t NumBatchesFlushed = 0;

  // Constraint-group retraction (incremental re-analysis support). These
  // are never emitted in reports — retraction is an opt-in warm-solve mode
  // and default telemetry must not depend on whether it was exercised.
  uint64_t NumGroupRetractions = 0;
  uint64_t NumRetractionRefusals = 0;

  // Set-memory accounting (refreshed by Solver::stats()). Heap capacity
  // bytes owned by every points-to / delta / delivered set of this solver;
  // the inline small tier books zero bytes, which is the saving being
  // measured. Deterministic for identical constraint streams (vector
  // capacity growth is deterministic in-process), but representation-
  // dependent — reports gate these behind --report-timings.
  uint64_t SetBytesLive = 0;
  uint64_t SetBytesPeak = 0;
  uint64_t SetTierPromotionsSparse = 0;
  uint64_t SetTierPromotionsDense = 0;
  /// Tier histogram over non-empty representative points-to sets.
  uint64_t SetsSmall = 0;
  uint64_t SetsSparse = 0;
  uint64_t SetsDense = 0;

  friend bool operator==(const SolverStats &, const SolverStats &) = default;
};

/// Wave/thread counters for the parallel fixpoint. Kept outside
/// SolverStats on purpose: SolverStats must stay byte-identical across
/// thread counts (it feeds default reports and the golden gate), while
/// these describe the execution strategy and are emitted only behind
/// --report-timings.
struct SolverParallelStats {
  /// Thread budget the solver ran with (1 = sequential loop, no waves).
  uint64_t Jobs = 1;
  /// Waves executed (snapshot + parallel precompute + ordered commit).
  uint64_t NumWaves = 0;
  /// Worklist pops committed through wave mode.
  uint64_t NumWavePops = 0;
  /// Successor-edge unions served from a precomputed new-token set.
  uint64_t NumPrecomputedEdges = 0;
  /// Precomputed slots discarded at commit time (a cycle collapse or a
  /// same-wave delta growth invalidated them; their pops fell back to the
  /// plain sequential union).
  uint64_t NumStaleSlots = 0;

  friend bool operator==(const SolverParallelStats &,
                         const SolverParallelStats &) = default;
};

/// Tag for a retractable batch of constraints (one per module in the
/// incremental-solve path). Group 0 is the shared/ungrouped default.
using ConstraintGroup = uint32_t;

/// Opaque provenance-origin id attributed to constraints (see setOrigin()).
/// The solver never interprets origins; the explain subsystem interns an
/// origin table and maps id 0 to "plain AST constraint".
using ProvOriginId = uint32_t;

/// How one token first entered one representative's points-to set, the
/// unit of the provenance layer (recorded only under setExplainRecording):
/// the predecessor variable the token flowed in from (~0 for a direct
/// addToken insertion) and the origin current when the responsible
/// constraint was created.
struct TokenArrival {
  CVarId From = ~CVarId(0);
  ProvOriginId Origin = 0;
};

/// Subset-constraint solver.
class Solver {
public:
  using Listener = std::function<void(TokenId)>;

  Solver();

  /// Selects the set representation for this solver's points-to machinery
  /// (default: the process-wide defaultSolverSetKind()). Call before
  /// adding constraints: switching to Dense migrates existing sets, but
  /// Dense -> Adaptive cannot unpin sets already forced dense.
  void setSetKind(SolverSetKind K);
  SolverSetKind setKind() const { return SetKind; }

  /// Thread budget for solve() (default: the process-wide
  /// defaultSolverJobs()). 1 keeps today's sequential loop; N > 1 enables
  /// wave-parallel precompute with a pool of N - 1 worker threads (the
  /// committing thread is the Nth lane). Results are byte-identical to
  /// sequential at any value — see the file comment. May be called
  /// between solves; the pool is spawned lazily at the first wave large
  /// enough to pay for it.
  void setJobs(size_t N);
  size_t jobs() const { return Jobs; }

  /// Adds t to [[V]]; schedules propagation.
  void addToken(CVarId V, TokenId T);

  /// Adds the subset edge [[From]] subseteq [[To]]. Tokens already in
  /// [[From]] reach [[To]]'s set immediately (batched); listeners observe
  /// them at the next solve(), exactly as for in-solve edge additions.
  void addEdge(CVarId From, CVarId To);

  /// Registers \p L on \p V: runs exactly once per (listener, token) pair,
  /// for every current token (replayed now) and every future one.
  void addListener(CVarId V, Listener L);

  /// Runs propagation to a fixpoint. Re-entrant calls (from listeners)
  /// are no-ops; the outer loop drains all work.
  void solve();

  /// Installs a deadline token polled once per worklist pop. When it
  /// expires, solve() stops at a well-defined partial fixpoint: every
  /// token already flushed has been fully delivered, pending deltas stay
  /// queued. \returns via wasCancelled() whether the last solve stopped
  /// early.
  void setCancellation(CancellationToken *T) { Cancel = T; }
  bool wasCancelled() const { return Cancelled; }

  /// --- Constraint-group retraction (incremental re-analysis) ---
  ///
  /// Tagging: every edge and listener added while a nonzero group is
  /// current belongs to that group; constraints a listener derives inherit
  /// the firing listener's group. retractGroup(G) then removes G's edges
  /// and listeners so a new version of G's constraints can be re-added
  /// against the warm state.
  ///
  /// Soundness model: retraction is a *sound over-approximation*, not exact
  /// deletion. Tokens G already propagated are never withdrawn (exact
  /// withdrawal is delete-and-rederive over the whole graph — a cold
  /// solve); they linger as extra may-facts, so a warm retract-and-readd
  /// fixpoint is always a superset of the cold one and never misses a
  /// fact. Removal itself must still be exact, which fails in two cases
  /// that make retractGroup() refuse (caller falls back to a cold solve):
  ///  - any cycle collapse since tracking began (collapse splices and
  ///    dedups successor lists, destroying edge attribution), and
  ///  - a cross-group duplicate edge (the hashed dedup keeps one physical
  ///    edge for two owners; removing it for one would drop the other's).
  ///
  /// First nonzero setGroup() enables tracking; until then none of the
  /// bookkeeping below costs anything.
  void setGroup(ConstraintGroup G);
  ConstraintGroup currentGroup() const { return CurGroup; }
  /// Whether retractGroup(\p G) would succeed right now.
  bool canRetract(ConstraintGroup G) const;
  /// Removes \p G's edges and listeners as described above. \returns false
  /// (and changes nothing) when removal would be unsound; the caller must
  /// then rebuild from scratch.
  bool retractGroup(ConstraintGroup G);

  /// --- Provenance recording (the explain subsystem's data source) ---
  ///
  /// When enabled, the solver records for every (representative, token)
  /// pair the *first* arrival of that token: the predecessor variable it
  /// flowed in from (~0 for direct addToken insertions) and the origin id
  /// current when the responsible constraint was created. Origins follow
  /// the same inheritance discipline as constraint groups: edges remember
  /// the origin current at addEdge time, tokens propagated across an edge
  /// inherit the edge's origin, and constraints derived inside a listener
  /// callback inherit the registering context's origin. Cycle collapses
  /// re-key the merged member's arrivals onto the new representative
  /// (first record wins), and the parallel fixpoint records only on the
  /// committing thread (the commit replay IS the sequential loop), so
  /// recorded chains are identical at any thread count. Every recording
  /// site is behind one branch on the flag: recording off costs nothing
  /// and is the default.
  void setExplainRecording(bool On) { Recording = On; }
  bool explainRecording() const { return Recording; }
  /// Origin attributed to constraints added from now on (until the next
  /// call). Ignored (but harmless) while recording is off.
  void setOrigin(ProvOriginId O) { CurOrigin = O; }
  ProvOriginId currentOrigin() const { return CurOrigin; }
  /// First recorded arrival of \p T at \p V's representative, or nullptr
  /// when recording was off or the pair is absent. The From field names
  /// the predecessor as of arrival time — canonicalize through
  /// representative() when walking chains after collapses.
  const TokenArrival *arrival(CVarId V, TokenId T) const;
  /// Number of constraint-variable slots ever ensured (the iteration bound
  /// for carrier scans in the explain subsystem).
  size_t numVars() const { return Parent.size(); }

  const AdaptiveSet &pointsTo(CVarId V) const;
  /// Engine counters plus set-memory accounting. Non-const: the memory
  /// fields and tier histogram are refreshed from the live sets on each
  /// call.
  const SolverStats &stats();
  /// Wave/thread counters of the parallel fixpoint (all zero when solving
  /// sequentially, except Jobs).
  const SolverParallelStats &parallelStats() const { return PStats; }

  /// The union-find representative currently standing for \p V (exposed
  /// for tests and diagnostics; stable only between solve() calls).
  CVarId representative(CVarId V) const { return findConst(V); }

private:
  /// One registered listener with its exactly-once delivery record. The
  /// callable lives behind a shared_ptr: callbacks may register further
  /// listeners (reallocating the record vectors), so invocation goes
  /// through a cheap handle copy instead of copying the std::function.
  struct ListenerRecord {
    std::shared_ptr<Listener> Fn;
    AdaptiveSet Delivered; ///< Tokens already handed to Fn.
    ConstraintGroup Group = 0; ///< Owning group (0 = shared, irretractable).
    ProvOriginId Origin = 0; ///< Origin inherited by derived constraints.
  };

  /// Result of the read-only parallel phase for one queued variable: the
  /// tokens its pending delta would newly contribute across each of its
  /// first NumSuccs successor edges. Valid for the commit only while the
  /// state it was computed from still holds (checked in solveWave).
  struct PrecomputeSlot {
    CVarId V = 0;           ///< Representative the slot was computed for.
    uint64_t DeltaEpoch = 0; ///< Delta[V] mutation epoch at snapshot time.
    uint32_t NumSuccs = 0;  ///< Succs[V].size() at snapshot time.
    bool Usable = false;
    /// Per successor edge: Delta[V] minus PointsTo[successor], i.e. what
    /// the union at commit time will actually add. Scratch sets — never
    /// attached to the memory accounting, reused across waves.
    std::vector<AdaptiveSet> NewBits;
  };

  void ensure(CVarId V);
  CVarId find(CVarId V);
  CVarId findConst(CVarId V) const;
  void schedule(CVarId R);
  /// Unions \p Ts into [[To]] (a representative), extending its delta with
  /// the newly inserted tokens. Under provenance recording, tokens of
  /// \p Ts not yet in [[To]] get an arrival record (\p ViaFrom, \p Origin)
  /// first — a read-only pre-pass, so the union itself is unchanged.
  /// \returns true if the set changed.
  bool insertTokens(CVarId To, const AdaptiveSet &Ts,
                    CVarId ViaFrom = ~CVarId(0), ProvOriginId Origin = 0);
  /// Rewrites Succs[V] to canonical representatives, dropping self-loops
  /// and duplicates introduced by collapsing.
  void canonicalizeSuccs(CVarId V);
  /// Flushes V's pending delta to successors and listeners, recording
  /// lazy-cycle-detection candidates in \p Candidates. When \p Pre is
  /// non-null (a still-valid precomputed slot for V), successor unions
  /// within its range use the precomputed new-token sets — byte-identical
  /// to the full union because all-duplicate word unions are no-ops on
  /// every tier.
  void flush(CVarId V, std::vector<std::pair<CVarId, CVarId>> &Candidates,
             const PrecomputeSlot *Pre = nullptr);
  /// If To still reaches From, collapses every variable on the found
  /// From -> To -> ... -> From cycle into one representative.
  void collapseCycle(CVarId From, CVarId To);
  /// One sequential worklist pop (the classic loop body). \returns false
  /// when the cancellation token expired.
  bool stepOne(std::vector<std::pair<CVarId, CVarId>> &Candidates);
  /// Snapshot the queued worklist as one wave, precompute per-edge deltas
  /// in parallel (read-only), then commit the wave in exact sequential pop
  /// order. \returns false when the cancellation token expired mid-commit
  /// (uncommitted pops stay queued, exactly like a sequential stop).
  bool solveWave(std::vector<std::pair<CVarId, CVarId>> &Candidates);
  /// The parallel phase's per-variable work: strictly read-only on solver
  /// state (findConst, WordCursor lookups — never contains()/find(), which
  /// mutate hint/parent state).
  void precomputeSlot(CVarId Popped, PrecomputeSlot &Out) const;

  static uint64_t edgeKey(CVarId From, CVarId To) {
    return (uint64_t(From) << 32) | uint64_t(To);
  }

  /// Arrival-map key: (representative << 32) | token. An ordered map under
  /// this key makes one variable's arrivals a contiguous range, which is
  /// what lets cycle collapsing re-key a merged member in one range splice.
  static uint64_t arrivalKey(CVarId V, TokenId T) {
    return (uint64_t(V) << 32) | uint64_t(T);
  }

  /// Records first-arrival entries for every token of \p Ts missing from
  /// [[To]] (the recording pre-pass of insertTokens, out of line to keep
  /// the hot path small).
  void recordArrivals(CVarId To, const AdaptiveSet &Ts, CVarId ViaFrom,
                      ProvOriginId Origin);

  /// Representation policy for every set this solver creates.
  SolverSetKind SetKind = defaultSolverSetKind();
  /// Shared accounting block for every set below. Declared before them so
  /// it outlives their destructors (each books its bytes back out).
  SetMemoryStats SetMem;

  // Per-variable state; entries are authoritative only for union-find
  // representatives (merged members' storage is released on collapse).
  std::vector<CVarId> Parent;  ///< Union-find forest (path-halving).
  std::vector<AdaptiveSet> PointsTo;
  std::vector<AdaptiveSet> Delta; ///< Tokens inserted but not yet flushed.
  std::vector<std::vector<CVarId>> Succs;
  std::vector<std::vector<ListenerRecord>> Listeners;

  /// FIFO worklist of variables with a non-empty delta.
  std::deque<CVarId> Worklist;
  std::vector<bool> InWorklist;

  // --- Parallel-wave state (inert while Jobs == 1) ---
  /// Minimum queued variables to run a pop as part of a wave at all.
  static constexpr size_t MinWavePops = 16;
  /// Minimum wave size before the worker pool is engaged (and lazily
  /// spawned); smaller waves precompute inline on the committing thread,
  /// so tiny graphs never pay thread startup.
  static constexpr size_t PoolMinWave = 64;
  size_t Jobs = defaultSolverJobs();
  /// Per-variable mutation epoch of Delta[V], bumped on every delta
  /// change. A precomputed slot is valid only while its source delta's
  /// epoch is unchanged since the snapshot.
  std::vector<uint32_t> DeltaEpoch;
  /// Set when a cycle collapse lands during the current wave's commit:
  /// representatives moved, so every remaining slot of the wave is stale.
  bool WaveCollapsed = false;
  std::vector<PrecomputeSlot> Slots; ///< Reused across waves.
  std::unique_ptr<WorkerPool> Pool;  ///< Lazily spawned (Jobs - 1 threads).
  SolverParallelStats PStats;

  /// Hashed (From, To) pairs backing O(1) duplicate-edge rejection. Never
  /// iterated (determinism); keys use the representatives at insert time,
  /// canonicalizeSuccs refreshes them after collapses.
  EdgeKeySet EdgeSet;
  /// Edges already submitted to cycle detection (Hardekopf–Lin style:
  /// each edge triggers at most one DFS).
  EdgeKeySet CheckedEdges;

  SolverStats Stats;
  AdaptiveSet Empty;
  /// Reusable storage for the delta being flushed. flush() is never
  /// re-entered (solve() re-entry is a no-op and collapses are deferred),
  /// so one scratch set suffices; recycling it avoids a word-array
  /// allocation per flush on small graphs.
  AdaptiveSet FlushScratch;
  bool Solving = false;

  /// Optional deadline token (not owned); see setCancellation().
  CancellationToken *Cancel = nullptr;
  bool Cancelled = false;

  // --- Group-retraction state (all inert until the first setGroup()) ---
  ConstraintGroup CurGroup = 0;
  bool Tracking = false;
  /// Any collapse after tracking began destroys edge attribution for every
  /// group; retraction then refuses across the board.
  bool CollapsedWhileTracking = false;
  std::set<ConstraintGroup> TaintedGroups;
  /// Per-group log of (From, To) representatives at insert time. Valid for
  /// removal only while no collapse has happened (checked above).
  std::map<ConstraintGroup, std::vector<std::pair<CVarId, CVarId>>> EdgeLog;
  /// Edge key -> owning group, for cross-group duplicate detection.
  std::map<uint64_t, ConstraintGroup> EdgeOwner;
  /// Keys removed by retraction. EdgeKeySet is insert-only, so a re-added
  /// edge probes here to be treated as fresh instead of duplicate.
  std::set<uint64_t> RemovedEdges;

  // --- Provenance state (all inert until setExplainRecording(true)) ---
  bool Recording = defaultExplainRecording();
  ProvOriginId CurOrigin = 0;
  /// First arrival per (representative, token), keyed by arrivalKey().
  /// Ordered so one variable's records are contiguous (collapse re-keying)
  /// and chain walks are deterministic. Never attached to SetMem: the
  /// provenance side tables must not perturb the memory metrics.
  std::map<uint64_t, TokenArrival> Arrivals;
  /// Origin current at addEdge time per physical edge (edgeKey of the
  /// representatives at insert time). Flush propagation attributes token
  /// arrivals across an edge to this origin. Best-effort across collapses:
  /// canonicalizeSuccs re-keys entries whose successor endpoint moved, but
  /// an edge whose *source* was merged away falls back to origin 0 (AST) —
  /// a documented precision loss, never a soundness one, since arrival
  /// chains themselves survive re-keying.
  std::map<uint64_t, ProvOriginId> EdgeOrigins;
};

} // namespace jsai

#endif // JSAI_ANALYSIS_SOLVER_H
