//===- Lexer.cpp ----------------------------------------------------------===//

#include "lexer/Lexer.h"

#include "support/JsNumber.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <unordered_map>

using namespace jsai;

Lexer::Lexer(FileId File, const std::string &Source, DiagnosticEngine &Diags)
    : File(File), Source(Source), Diags(Diags) {}

SourceLoc Lexer::currentLoc() const { return SourceLoc(File, Line, Col); }

char Lexer::peek(size_t Ahead) const {
  size_t Idx = Pos + Ahead;
  return Idx < Source.size() ? Source[Idx] : '\0';
}

char Lexer::advance() {
  assert(Pos < Source.size() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      bool Closed = false;
      while (Pos < Source.size()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  // Hex literal.
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
      Diags.error(Loc, "hex literal requires at least one digit");
      Token T = makeToken(TokenKind::Error, Loc);
      T.Text = "hex literal requires at least one digit";
      return T;
    }
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      advance();
      if (peek() == '+' || peek() == '-')
        advance();
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      } else {
        Pos = Save; // Not an exponent; leave 'e' for the identifier lexer.
      }
    }
  }
  Token T = makeToken(TokenKind::Number, Loc);
  // Convert exactly the scanned span. An unbounded strtod here would read
  // past the token (e.g. "123.e5" scans "123" but strtod would consume the
  // ".e5" the parser is about to re-lex as member access), and its hex path
  // saturates literals wider than 64 bits. The scanned text is always a
  // valid StringToNumber literal, so this also keeps literal values
  // identical to the interpreter's string->number conversions.
  T.NumValue = jsStringToNumber(Source.substr(Start, Pos - Start));
  assert(!std::isnan(T.NumValue) && "scanned span must convert cleanly");
  return T;
}

Token Lexer::lexString(SourceLoc Loc, char Quote) {
  std::string Decoded;
  while (true) {
    if (Pos >= Source.size() || peek() == '\n') {
      Diags.error(Loc, "unterminated string literal");
      Token T = makeToken(TokenKind::Error, Loc);
      T.Text = "unterminated string literal";
      return T;
    }
    char C = advance();
    if (C == Quote)
      break;
    if (C != '\\') {
      Decoded.push_back(C);
      continue;
    }
    if (Pos >= Source.size()) {
      Diags.error(Loc, "unterminated string escape");
      Token T = makeToken(TokenKind::Error, Loc);
      T.Text = "unterminated string escape";
      return T;
    }
    char Esc = advance();
    switch (Esc) {
    case 'n':
      Decoded.push_back('\n');
      break;
    case 't':
      Decoded.push_back('\t');
      break;
    case 'r':
      Decoded.push_back('\r');
      break;
    case '0':
      Decoded.push_back('\0');
      break;
    case '\\':
    case '\'':
    case '"':
      Decoded.push_back(Esc);
      break;
    case '\n':
      break; // Line continuation.
    default:
      Decoded.push_back(Esc);
      break;
    }
  }
  Token T = makeToken(TokenKind::String, Loc);
  T.Text = std::move(Decoded);
  return T;
}

static TokenKind keywordKind(const std::string &Word) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"var", TokenKind::KwVar},
      {"let", TokenKind::KwLet},
      {"const", TokenKind::KwConst},
      {"function", TokenKind::KwFunction},
      {"return", TokenKind::KwReturn},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},
      {"for", TokenKind::KwFor},
      {"in", TokenKind::KwIn},
      {"of", TokenKind::KwOf},
      {"new", TokenKind::KwNew},
      {"this", TokenKind::KwThis},
      {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
      {"null", TokenKind::KwNull},
      {"undefined", TokenKind::KwUndefined},
      {"typeof", TokenKind::KwTypeof},
      {"delete", TokenKind::KwDelete},
      {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"throw", TokenKind::KwThrow},
      {"try", TokenKind::KwTry},
      {"catch", TokenKind::KwCatch},
      {"finally", TokenKind::KwFinally},
      {"switch", TokenKind::KwSwitch},
      {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
      {"instanceof", TokenKind::KwInstanceof},
      {"void", TokenKind::KwVoid},
      {"import", TokenKind::KwImport},
      {"export", TokenKind::KwExport},
      // `from` and `as` stay contextual (they are valid identifiers).
  };
  auto It = Keywords.find(Word);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$';
}

static bool isIdentCont(char C) {
  return isIdentStart(C) || std::isdigit(static_cast<unsigned char>(C));
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  while (isIdentCont(peek()))
    advance();
  std::string Word = Source.substr(Start, Pos - Start);
  TokenKind Kind = keywordKind(Word);
  Token T = makeToken(Kind, Loc);
  if (Kind == TokenKind::Identifier)
    T.Text = std::move(Word);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof, Loc);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (isIdentStart(C))
    return lexIdentifierOrKeyword(Loc);
  if (C == '"' || C == '\'') {
    advance();
    return lexString(Loc, C);
  }

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '?':
    if (match('?'))
      return makeToken(TokenKind::QuestionQuestion, Loc);
    return makeToken(TokenKind::Question, Loc);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::EqEqEq, Loc);
      return makeToken(TokenKind::EqEq, Loc);
    }
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc);
    return makeToken(TokenKind::Assign, Loc);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(TokenKind::NotEqEq, Loc);
      return makeToken(TokenKind::NotEq, Loc);
    }
    return makeToken(TokenKind::Not, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc);
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc);
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign, Loc);
    return makeToken(TokenKind::Star, Loc);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign, Loc);
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Loc);
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEq, Loc);
    if (match('<'))
      return makeToken(TokenKind::Shl, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEq, Loc);
    if (match('>'))
      return makeToken(TokenKind::Shr, Loc);
    return makeToken(TokenKind::Greater, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AndAnd, Loc);
    return makeToken(TokenKind::Amp, Loc);
  case '|':
    if (match('|')) {
      if (match('='))
        return makeToken(TokenKind::OrOrAssign, Loc);
      return makeToken(TokenKind::OrOr, Loc);
    }
    return makeToken(TokenKind::Pipe, Loc);
  case '^':
    return makeToken(TokenKind::Caret, Loc);
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  Token T = makeToken(TokenKind::Error, Loc);
  T.Text = std::string("unexpected character '") + C + "'";
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof);
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}
