//===- Lexer.h - MiniJS lexer -----------------------------------*- C++ -*-===//
///
/// \file
/// Hand-written lexer for MiniJS. Produces one token at a time; the parser
/// drives it. Comments (`//`, `/* */`) and whitespace are skipped. String
/// escapes are decoded in place.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_LEXER_LEXER_H
#define JSAI_LEXER_LEXER_H

#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <string>

namespace jsai {

/// Converts MiniJS source text into tokens.
class Lexer {
public:
  /// \p File identifies the source in diagnostics and source locations;
  /// \p Source must outlive the lexer.
  Lexer(FileId File, const std::string &Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token (TokenKind::Eof at end of input).
  Token next();

  /// Tokenizes everything (convenience for tests).
  std::vector<Token> lexAll();

private:
  SourceLoc currentLoc() const;
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind, SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  Token lexString(SourceLoc Loc, char Quote);
  Token lexIdentifierOrKeyword(SourceLoc Loc);

  FileId File;
  const std::string &Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace jsai

#endif // JSAI_LEXER_LEXER_H
