//===- Token.h - MiniJS tokens ----------------------------------*- C++ -*-===//
///
/// \file
/// Token kinds for the MiniJS frontend. MiniJS is the JavaScript subset that
/// carries the paper's core language (Fig. 2) plus the surrounding features
/// needed to express real-world library-initialization patterns: closures,
/// `this`, prototypes, CommonJS modules, `eval`, and the usual statements,
/// operators, and literals.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_LEXER_TOKEN_H
#define JSAI_LEXER_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace jsai {

enum class TokenKind {
  // Sentinels.
  Eof,
  Error,

  // Literals and identifiers.
  Identifier,
  Number,
  String,

  // Keywords.
  KwVar,
  KwLet,
  KwConst,
  KwFunction,
  KwReturn,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwIn,
  KwOf,
  KwNew,
  KwThis,
  KwTrue,
  KwFalse,
  KwNull,
  KwUndefined,
  KwTypeof,
  KwDelete,
  KwBreak,
  KwContinue,
  KwThrow,
  KwTry,
  KwCatch,
  KwFinally,
  KwSwitch,
  KwCase,
  KwDefault,
  KwInstanceof,
  KwVoid,
  KwImport,
  KwExport,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Colon,
  Question,
  Arrow, // =>

  // Operators.
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  OrOrAssign,    // ||=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  EqEq,    // ==
  EqEqEq,  // ===
  NotEq,   // !=
  NotEqEq, // !==
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AndAnd,
  OrOr,
  QuestionQuestion, // ??
  Not,              // !
  Amp,              // &
  Pipe,             // |
  Caret,            // ^
  Tilde,            // ~
  Shl,              // <<
  Shr,              // >>
};

/// \returns a human-readable spelling for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. String/number payloads are stored decoded.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier name, decoded string literal contents, or error message.
  std::string Text;
  /// Value for TokenKind::Number.
  double NumValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace jsai

#endif // JSAI_LEXER_TOKEN_H
