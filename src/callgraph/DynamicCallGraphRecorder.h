//===- DynamicCallGraphRecorder.h - Dynamic CG capture ----------*- C++ -*-===//
///
/// \file
/// Observer that records the dynamic call graph of a concrete execution
/// (the role NodeProf plays for the paper): every invocation of a
/// program-defined function from a real call site becomes an edge. Module
/// functions and functions defined in eval code are excluded (they have no
/// statically meaningful identity), matching the evaluation's methodology.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CALLGRAPH_DYNAMICCALLGRAPHRECORDER_H
#define JSAI_CALLGRAPH_DYNAMICCALLGRAPHRECORDER_H

#include "callgraph/CallGraph.h"
#include "interp/Observer.h"

#include <set>

namespace jsai {

/// Records dynamic call edges and coverage while a test driver runs.
class DynamicCallGraphRecorder : public InterpObserver {
public:
  void onCall(SourceLoc CallSite, FunctionDef *Callee) override {
    if (Callee->isModule() || Callee->isInEval())
      return;
    ReachedFunctions.insert(Callee->loc());
    if (!CallSite.isValid())
      return;
    CG.addEdge(CallSite, Callee->loc());
  }

  const CallGraph &callGraph() const { return CG; }
  /// Functions executed at least once (regardless of call-site validity).
  const std::set<SourceLoc> &reachedFunctions() const {
    return ReachedFunctions;
  }

private:
  CallGraph CG;
  std::set<SourceLoc> ReachedFunctions;
};

} // namespace jsai

#endif // JSAI_CALLGRAPH_DYNAMICCALLGRAPHRECORDER_H
