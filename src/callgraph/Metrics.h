//===- Metrics.h - Evaluation metrics ---------------------------*- C++ -*-===//
///
/// \file
/// The metrics of Section 5:
///
///  - call edges, reachable functions, resolved call sites, monomorphic
///    call sites (from an AnalysisResult alone);
///  - call-edge-set recall and per-call precision against a dynamic call
///    graph [Chakraborty et al. 2022; Feldthaus et al. 2013].
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CALLGRAPH_METRICS_H
#define JSAI_CALLGRAPH_METRICS_H

#include "analysis/StaticAnalysis.h"
#include "callgraph/CallGraph.h"

namespace jsai {

/// Recall/precision of a static call graph vs. a dynamic one.
struct RecallPrecision {
  /// |dynamic intersect static| / |dynamic| — 100% for a sound analysis.
  double Recall = 0;
  /// Average over call sites appearing in the dynamic call graph (and
  /// resolved statically) of the fraction of static edges that are also
  /// dynamic.
  double Precision = 0;
  size_t DynamicEdges = 0;
  size_t MatchedEdges = 0;
};

/// Compares \p Static against \p Dynamic (both location-keyed).
RecallPrecision compareCallGraphs(const CallGraph &Static,
                                  const CallGraph &Dynamic);

/// Relative change helpers for the summary rows ("55.1% more call edges").
inline double relativeIncrease(double Before, double After) {
  return Before == 0 ? 0 : (After - Before) / Before;
}

} // namespace jsai

#endif // JSAI_CALLGRAPH_METRICS_H
