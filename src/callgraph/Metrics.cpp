//===- Metrics.cpp --------------------------------------------------------===//

#include "callgraph/Metrics.h"

using namespace jsai;

RecallPrecision jsai::compareCallGraphs(const CallGraph &Static,
                                        const CallGraph &Dynamic) {
  RecallPrecision R;

  // Call-edge-set recall.
  for (const auto &[Site, Callees] : Dynamic.edges()) {
    for (const SourceLoc &Callee : Callees) {
      ++R.DynamicEdges;
      if (Static.hasEdge(Site, Callee))
        ++R.MatchedEdges;
    }
  }
  R.Recall = R.DynamicEdges == 0
                 ? 1.0
                 : double(R.MatchedEdges) / double(R.DynamicEdges);

  // Per-call precision, averaged over call sites in the dynamic call graph
  // for which the static analysis produced at least one edge.
  double Sum = 0;
  size_t Count = 0;
  for (const auto &[Site, DynCallees] : Dynamic.edges()) {
    const std::set<SourceLoc> &StaticCallees = Static.calleesOf(Site);
    if (StaticCallees.empty())
      continue;
    size_t Correct = 0;
    for (const SourceLoc &Callee : StaticCallees)
      if (DynCallees.count(Callee))
        ++Correct;
    Sum += double(Correct) / double(StaticCallees.size());
    ++Count;
  }
  R.Precision = Count == 0 ? 1.0 : Sum / double(Count);
  return R;
}
