//===- CallGraph.h - Location-keyed call graphs -----------------*- C++ -*-===//
///
/// \file
/// Call graphs as sets of (call-site location, callee-definition location)
/// pairs — the common representation of the static analysis and the dynamic
/// call-graph recorder, so recall and precision are direct set comparisons
/// (Section 5's metrics).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_CALLGRAPH_CALLGRAPH_H
#define JSAI_CALLGRAPH_CALLGRAPH_H

#include "support/SourceLoc.h"

#include <map>
#include <set>
#include <string>

namespace jsai {

/// A call graph over source locations.
class CallGraph {
public:
  void addEdge(SourceLoc Site, SourceLoc Callee) {
    Edges[Site].insert(Callee);
  }

  bool hasEdge(SourceLoc Site, SourceLoc Callee) const;

  /// Callees of \p Site (empty set when unresolved).
  const std::set<SourceLoc> &calleesOf(SourceLoc Site) const;

  /// All (site -> callees) entries, ordered.
  const std::map<SourceLoc, std::set<SourceLoc>> &edges() const {
    return Edges;
  }

  size_t numEdges() const;
  size_t numSites() const { return Edges.size(); }

  /// Every callee that appears in some edge.
  std::set<SourceLoc> allCallees() const;

  std::string toText(const FileTable &Files) const;

private:
  std::map<SourceLoc, std::set<SourceLoc>> Edges;
  std::set<SourceLoc> EmptySet;
};

} // namespace jsai

#endif // JSAI_CALLGRAPH_CALLGRAPH_H
