//===- CallGraph.cpp ------------------------------------------------------===//

#include "callgraph/CallGraph.h"

using namespace jsai;

bool CallGraph::hasEdge(SourceLoc Site, SourceLoc Callee) const {
  auto It = Edges.find(Site);
  return It != Edges.end() && It->second.count(Callee) != 0;
}

const std::set<SourceLoc> &CallGraph::calleesOf(SourceLoc Site) const {
  auto It = Edges.find(Site);
  return It == Edges.end() ? EmptySet : It->second;
}

size_t CallGraph::numEdges() const {
  size_t Total = 0;
  for (const auto &[Site, Callees] : Edges)
    Total += Callees.size();
  return Total;
}

std::set<SourceLoc> CallGraph::allCallees() const {
  std::set<SourceLoc> Out;
  for (const auto &[Site, Callees] : Edges)
    Out.insert(Callees.begin(), Callees.end());
  return Out;
}

std::string CallGraph::toText(const FileTable &Files) const {
  std::string Out;
  for (const auto &[Site, Callees] : Edges)
    for (const SourceLoc &Callee : Callees)
      Out += Files.format(Site) + " -> " + Files.format(Callee) + "\n";
  return Out;
}
