//===- Explain.h - Root-cause analysis of unsoundness/imprecision -*- C++ -*-=//
///
/// \file
/// The explain subsystem: given one finished static-analysis run (via
/// StaticAnalysis::ExplainView, with provenance recording on) and the
/// project's dynamic call graph, answer two questions:
///
///  - **Unsoundness**: for every dynamic call edge the static call graph
///    lacks, which mechanism failed? Each miss gets exactly one ranked
///    CauseKind plus a witness chain of constraint variables showing how
///    far the callee's function token actually flowed.
///  - **Imprecision**: for every spurious static callee at a dynamically
///    observed call site, which recorded origin (hint, builtin model, eval
///    body, ...) first injected the offending token? Origins are ranked by
///    total inflation.
///
/// All records are rendered to plain strings here, so a BlameSummary stays
/// valid after the analysis (and its solver) is destroyed — the pipeline
/// computes it while the StaticAnalysis is alive and ships only strings.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_EXPLAIN_EXPLAIN_H
#define JSAI_EXPLAIN_EXPLAIN_H

#include "analysis/StaticAnalysis.h"
#include "callgraph/CallGraph.h"

#include <array>
#include <string>
#include <vector>

namespace jsai {

/// Root causes for a missed dynamic call edge, in rank order: the
/// classifier assigns the first kind that applies, so every miss has
/// exactly one cause and bench_blame_breakdown's frequencies sum to 100%.
/// Order is part of the deterministic report sort; append only.
enum class CauseKind : uint8_t {
  /// The call site or the callee definition lives in code the static
  /// analysis never saw — an eval code string (without --eval-bodies) or
  /// otherwise dynamically materialized source.
  EvalCode = 0,
  /// The call dispatches through a modeled builtin whose dataflow model
  /// does not propagate this callee (e.g. an unmodeled higher-order use).
  UnmodeledBuiltin,
  /// A dynamic-property callee with no read hint at the access site: the
  /// approximate interpretation never observed this access (and no budget
  /// abort can be blamed), or hint consumption was disabled for this mode.
  MissingHint,
  /// A dynamic-property callee with no read hint at the access site while
  /// the approximate interpretation aborted executions on a budget — the
  /// hint was plausibly lost to truncation.
  ApproxBudget,
  /// A read hint exists at the access site but rule [DPR] still did not
  /// route this callee to the call — the hint resolved other values.
  UnresolvedDynamicProperty,
  /// Everything else: the callee token exists but never reached the callee
  /// variable through the subset constraints.
  DataflowGap,
  NumCauseKinds
};

const char *causeName(CauseKind K);

/// One missed dynamic call edge, classified.
struct MissRecord {
  std::string Site;   ///< Rendered call-site location.
  std::string Callee; ///< Rendered callee (name + definition location).
  CauseKind Cause = CauseKind::DataflowGap;
  std::string Detail; ///< One-line human-readable cause elaboration.
  /// Constraint-variable chain witnessing how far the callee's function
  /// token flowed (source arrival first, nearest carrier last), ending
  /// with the gap to the callee variable. Empty when provenance recording
  /// was off or the token never materialized.
  std::vector<std::string> Witness;
  /// Sort/tiebreak key: the constraint-variable id of the call's callee
  /// variable (~0 when the site was never built).
  CVarId SiteVar = ~CVarId(0);
};

/// One spurious static callee at a dynamically observed call site.
struct InflationRecord {
  std::string Site;   ///< Rendered call-site location.
  std::string Token;  ///< Described spurious callee token.
  std::string Origin; ///< Rendered origin blamed for injecting it.
  uint32_t OriginId = 0;
};

/// Aggregate inflation attributed to one origin.
struct OriginInflation {
  std::string Origin;
  size_t SpuriousTokens = 0;
  uint32_t OriginId = 0;
};

/// Everything `jsai explain`, the serve handler, and the bench consume.
/// Self-contained strings: no pointers into the analysis.
struct BlameSummary {
  /// Misses sorted by (cause rank, site string, callee string) — the
  /// documented deterministic order of reports and JSONL blocks.
  std::vector<MissRecord> Misses;
  /// Cause frequency histogram over Misses (indexed by CauseKind).
  std::array<size_t, size_t(CauseKind::NumCauseKinds)> CauseHist{};
  /// Spurious callees sorted by (site, token) strings.
  std::vector<InflationRecord> Inflations;
  /// Origins ranked by inflation, descending; ties by origin id.
  std::vector<OriginInflation> RankedOrigins;
  size_t DynamicEdges = 0;
  size_t MissedEdges = 0;
  size_t SpuriousEdges = 0;
};

/// Side inputs the view alone cannot provide.
struct ExplainInputs {
  const CallGraph *StaticCG = nullptr;  ///< Required.
  const CallGraph *DynamicCG = nullptr; ///< Required.
  /// ApproxStats::NumAborts of the hint-producing run (0 when hints were
  /// not produced); drives the ApproxBudget cause.
  size_t ApproxAborts = 0;
};

/// Classifies every missed dynamic edge and every spurious static callee.
/// Deterministic: identical runs produce identical summaries.
BlameSummary summarizeBlame(const StaticAnalysis::ExplainView &V,
                            const ExplainInputs &In);

/// Renders \p B as the human-readable `jsai explain` report. \p Top
/// truncates each section to its first N records (0 = unlimited); the
/// aggregate tables always cover everything.
std::string renderBlameReport(const BlameSummary &B, size_t Top = 0);

} // namespace jsai

#endif // JSAI_EXPLAIN_EXPLAIN_H
