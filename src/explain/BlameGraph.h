//===- BlameGraph.h - Back-walking the provenance layer ---------*- C++ -*-===//
///
/// \file
/// Read-only queries over the Solver's recorded token arrivals: which
/// constraint variables carry a token, through which chain of variables it
/// first arrived there, and which origin is to blame for injecting it.
///
/// Arrival records are keyed by *representative* variables and survive
/// cycle collapsing (Solver re-keys them when representatives merge), so
/// every walk canonicalizes through Solver::representative and guards
/// against the cycles that merging can introduce into From-chains.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_EXPLAIN_BLAMEGRAPH_H
#define JSAI_EXPLAIN_BLAMEGRAPH_H

#include "analysis/Solver.h"

#include <vector>

namespace jsai {

class BlameGraph {
public:
  explicit BlameGraph(const Solver &S) : S(S) {}

  /// Representative variables whose points-to set contains \p T, ascending
  /// by id. Non-representatives are skipped (their sets alias the rep's).
  std::vector<CVarId> carriersOf(TokenId T) const;

  /// The arrival chain of \p T into \p V: V first, then the variable it
  /// arrived from, and so on back to a direct insertion (no From). All
  /// entries are representatives; bounded and cycle-guarded. Empty when V
  /// does not carry T or nothing was recorded.
  std::vector<CVarId> chainTo(CVarId V, TokenId T) const;

  /// The origin id blamed for \p T being in \p V: the first non-zero
  /// (non-AST) origin on the arrival chain walking from V back to the
  /// source, or 0 when the whole chain is plain AST dataflow (or nothing
  /// was recorded).
  ProvOriginId blameOrigin(CVarId V, TokenId T) const;

private:
  const Solver &S;
};

} // namespace jsai

#endif // JSAI_EXPLAIN_BLAMEGRAPH_H
