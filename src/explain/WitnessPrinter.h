//===- WitnessPrinter.h - Rendering blame artifacts -------------*- C++ -*-===//
///
/// \file
/// Turns the analysis-internal ids appearing in blame records — constraint
/// variables, tokens, provenance origins — into stable human-readable
/// strings ("expr@app/index.js:4:9", "prop:fn:lib/a.js:1:1.handler",
/// "read-hint@app/index.js:7:3"). All rendering is pure lookup, so two
/// identical runs render identically.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_EXPLAIN_WITNESSPRINTER_H
#define JSAI_EXPLAIN_WITNESSPRINTER_H

#include "analysis/StaticAnalysis.h"

#include <string>

namespace jsai {

class WitnessPrinter {
public:
  explicit WitnessPrinter(const StaticAnalysis::ExplainView &V) : V(V) {}

  /// "expr@file:l:c", "var:name@file:l:c", "prop:<token>.<name>",
  /// "ret:fn@file:l:c", "this:fn@file:l:c", "global:name".
  std::string renderVar(CVarId Id) const;

  /// TokenFactory::describe ("fn:file:l:c", "obj:file:l:c", ...).
  std::string renderToken(TokenId T) const;

  /// "<kind>@file:l:c" ("read-hint@app/index.js:7:3"); "ast" for id 0;
  /// builtin origins append the builtin ordinal ("builtin#34@...").
  std::string renderOrigin(ProvOriginId Id) const;

  /// "name@file:l:c" (or "<anon>@file:l:c") for a function definition.
  std::string renderFunction(const FunctionDef &F) const;

  std::string renderLoc(SourceLoc Loc) const;

private:
  const StaticAnalysis::ExplainView &V;
};

} // namespace jsai

#endif // JSAI_EXPLAIN_WITNESSPRINTER_H
