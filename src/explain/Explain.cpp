//===- Explain.cpp - summarizeBlame and report rendering ------------------===//

#include "explain/Explain.h"

#include "explain/BlameGraph.h"
#include "explain/CauseRanker.h"
#include "explain/WitnessPrinter.h"
#include "interp/ModuleLoader.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace jsai;

const char *jsai::causeName(CauseKind K) {
  switch (K) {
  case CauseKind::EvalCode:
    return "eval-code";
  case CauseKind::UnmodeledBuiltin:
    return "unmodeled-builtin";
  case CauseKind::MissingHint:
    return "missing-hint";
  case CauseKind::ApproxBudget:
    return "approx-budget";
  case CauseKind::UnresolvedDynamicProperty:
    return "unresolved-dynamic-property";
  case CauseKind::DataflowGap:
    return "dataflow-gap";
  case CauseKind::NumCauseKinds:
    break;
  }
  return "?";
}

namespace {

/// Builds the witness chain for one miss: how far the callee's function
/// token actually flowed. Picks the smallest-id carrier (deterministic),
/// renders its arrival chain source-first, and closes with the gap note.
std::vector<std::string> buildWitness(const StaticAnalysis::ExplainView &V,
                                      const BlameGraph &BG,
                                      const WitnessPrinter &WP,
                                      const CauseRanker::Verdict &Verdict) {
  std::vector<std::string> Out;
  if (!V.S->explainRecording() || Verdict.Callee == nullptr)
    return Out;
  TokenId Tok =
      V.TF->tokenForAllocSite(AllocRef{Verdict.Callee->loc(), false});
  if (Tok == ~TokenId(0)) {
    Out.push_back("(callee token never materialized)");
    return Out;
  }
  std::vector<CVarId> Carriers = BG.carriersOf(Tok);
  if (Carriers.empty()) {
    Out.push_back("(callee token reached no constraint variable)");
    return Out;
  }
  std::vector<CVarId> Chain = BG.chainTo(Carriers.front(), Tok);
  // chainTo walks sink -> source; the witness reads source -> sink.
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
    Out.push_back(WP.renderVar(*It));
  if (Verdict.Site != nullptr && Verdict.Site->CalleeVar != ~CVarId(0))
    Out.push_back("(gap) -> " + WP.renderVar(V.S->representative(
                                    Verdict.Site->CalleeVar)));
  return Out;
}

} // namespace

BlameSummary jsai::summarizeBlame(const StaticAnalysis::ExplainView &V,
                                  const ExplainInputs &In) {
  BlameSummary B;
  const CallGraph &Static = *In.StaticCG;
  const CallGraph &Dynamic = *In.DynamicCG;
  B.DynamicEdges = Dynamic.numEdges();

  CauseRanker Ranker(V, In);
  BlameGraph BG(*V.S);
  WitnessPrinter WP(V);

  // --- Unsoundness: classify every missed dynamic edge. ---
  for (const auto &[SiteLoc, Callees] : Dynamic.edges()) {
    for (SourceLoc CalleeLoc : Callees) {
      if (Static.hasEdge(SiteLoc, CalleeLoc))
        continue;
      ++B.MissedEdges;
      CauseRanker::Verdict Verdict = Ranker.classify(SiteLoc, CalleeLoc);
      MissRecord M;
      M.Site = WP.renderLoc(SiteLoc);
      M.Callee = Verdict.Callee != nullptr
                     ? WP.renderFunction(*Verdict.Callee)
                     : "<unknown>@" + WP.renderLoc(CalleeLoc);
      M.Cause = Verdict.Cause;
      M.Detail = Verdict.Detail;
      M.Witness = buildWitness(V, BG, WP, Verdict);
      M.SiteVar =
          Verdict.Site != nullptr ? Verdict.Site->CalleeVar : ~CVarId(0);
      ++B.CauseHist[size_t(M.Cause)];
      B.Misses.push_back(std::move(M));
    }
  }
  // Deterministic report order: cause rank, then site, then callee (the
  // documented tiebreak; site/callee strings embed the project order the
  // dynamic CG iterates in, and SiteVar breaks exact string ties).
  std::stable_sort(B.Misses.begin(), B.Misses.end(),
                   [](const MissRecord &A, const MissRecord &C) {
                     if (A.Cause != C.Cause)
                       return A.Cause < C.Cause;
                     if (A.Site != C.Site)
                       return A.Site < C.Site;
                     if (A.Callee != C.Callee)
                       return A.Callee < C.Callee;
                     return A.SiteVar < C.SiteVar;
                   });

  // --- Imprecision: blame spurious static callees at observed sites. ---
  std::map<ProvOriginId, size_t> InflationByOrigin;
  for (const auto &[SiteLoc, DynCallees] : Dynamic.edges()) {
    if (DynCallees.empty())
      continue; // No dynamic ground truth at this site.
    const std::set<SourceLoc> &StaticCallees = Static.calleesOf(SiteLoc);
    for (SourceLoc CalleeLoc : StaticCallees) {
      if (DynCallees.count(CalleeLoc) != 0)
        continue;
      ++B.SpuriousEdges;
      InflationRecord R;
      R.Site = WP.renderLoc(SiteLoc);
      // Blame the origin that first injected the spurious callee's token
      // into the call's callee variable.
      TokenId Tok = V.TF->tokenForAllocSite(AllocRef{CalleeLoc, false});
      CauseRanker::Verdict Verdict = Ranker.classify(SiteLoc, CalleeLoc);
      R.Token = Tok != ~TokenId(0) ? WP.renderToken(Tok)
                                   : "fn@" + WP.renderLoc(CalleeLoc);
      ProvOriginId Origin = 0;
      if (V.S->explainRecording() && Tok != ~TokenId(0) &&
          Verdict.Site != nullptr && Verdict.Site->CalleeVar != ~CVarId(0))
        Origin = BG.blameOrigin(Verdict.Site->CalleeVar, Tok);
      R.OriginId = Origin;
      R.Origin = WP.renderOrigin(Origin);
      ++InflationByOrigin[Origin];
      B.Inflations.push_back(std::move(R));
    }
  }
  std::stable_sort(B.Inflations.begin(), B.Inflations.end(),
                   [](const InflationRecord &A, const InflationRecord &C) {
                     if (A.Site != C.Site)
                       return A.Site < C.Site;
                     return A.Token < C.Token;
                   });
  for (const auto &[Origin, Count] : InflationByOrigin) {
    OriginInflation OI;
    OI.OriginId = Origin;
    OI.Origin = WP.renderOrigin(Origin);
    OI.SpuriousTokens = Count;
    B.RankedOrigins.push_back(std::move(OI));
  }
  std::stable_sort(B.RankedOrigins.begin(), B.RankedOrigins.end(),
                   [](const OriginInflation &A, const OriginInflation &C) {
                     if (A.SpuriousTokens != C.SpuriousTokens)
                       return A.SpuriousTokens > C.SpuriousTokens;
                     return A.OriginId < C.OriginId;
                   });
  return B;
}

std::string jsai::renderBlameReport(const BlameSummary &B, size_t Top) {
  std::ostringstream OS;
  OS << "== missed dynamic call edges: " << B.MissedEdges << " of "
     << B.DynamicEdges << " ==\n";
  for (size_t K = 0; K != size_t(CauseKind::NumCauseKinds); ++K)
    if (B.CauseHist[K] != 0)
      OS << "  " << causeName(CauseKind(K)) << ": " << B.CauseHist[K]
         << "\n";
  size_t Shown = 0;
  for (const MissRecord &M : B.Misses) {
    if (Top != 0 && Shown++ == Top) {
      OS << "  ... (" << B.Misses.size() - Top << " more)\n";
      break;
    }
    OS << "  [" << causeName(M.Cause) << "] " << M.Site << " -> "
       << M.Callee << "\n      " << M.Detail << "\n";
    for (const std::string &W : M.Witness)
      OS << "      | " << W << "\n";
  }
  OS << "== spurious static callees at observed sites: " << B.SpuriousEdges
     << " ==\n";
  Shown = 0;
  for (const InflationRecord &R : B.Inflations) {
    if (Top != 0 && Shown++ == Top) {
      OS << "  ... (" << B.Inflations.size() - Top << " more)\n";
      break;
    }
    OS << "  " << R.Site << " ~> " << R.Token << " (blame: " << R.Origin
       << ")\n";
  }
  OS << "== origins ranked by inflation ==\n";
  for (const OriginInflation &OI : B.RankedOrigins)
    OS << "  " << OI.Origin << ": " << OI.SpuriousTokens << "\n";
  return OS.str();
}
