//===- Provenance.h - Constraint-origin table for blame tracing -*- C++ -*-===//
///
/// \file
/// The origin vocabulary of the provenance layer. The Solver records opaque
/// ProvOriginId tags on token arrivals (see Solver.h); this header gives
/// those ids meaning: an OriginKind (which mechanism created the
/// constraint), the source location of that mechanism's evidence (the hint
/// site, the eval call, the builtin call site), and a kind-specific Extra
/// payload (the BuiltinId for builtin-model origins).
///
/// Header-only on purpose: StaticAnalysis (the producer, in jsai_analysis)
/// interns origins while applying hints, and the explain subsystem (the
/// consumer, in jsai_explain, which links jsai_analysis) reads them back —
/// a .cpp here would force a dependency cycle between the two libraries.
///
/// Origin id 0 is reserved for "plain AST constraint" and never interned.
/// Interning order is deterministic (hint containers are ordered maps), so
/// identical analyses produce identical origin tables.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_EXPLAIN_PROVENANCE_H
#define JSAI_EXPLAIN_PROVENANCE_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace jsai {

/// Which mechanism created a constraint. Order is part of determinism and
/// of rendered output; append only.
enum class OriginKind : uint8_t {
  Ast = 0,           ///< Plain AST constraint (the reserved id-0 origin).
  Builtin,           ///< A builtin model's dataflow (Extra = BuiltinId).
  ReadHint,          ///< Rule [DPR] consuming a dynamic-read hint.
  WriteHint,         ///< Rule [DPW] consuming a dynamic-write hint.
  ModuleHint,        ///< A module-load hint at a dynamic require.
  UnknownArgHint,    ///< The Section 6 unknown-argument extension.
  EvalBody,          ///< Constraints from an analyzed eval code string.
  NonRelationalHint, ///< The property-name-only ablation.
  OverApprox,        ///< The TAJS-style over-approximating ablation.
};

inline const char *originKindName(OriginKind K) {
  switch (K) {
  case OriginKind::Ast:
    return "ast";
  case OriginKind::Builtin:
    return "builtin";
  case OriginKind::ReadHint:
    return "read-hint";
  case OriginKind::WriteHint:
    return "write-hint";
  case OriginKind::ModuleHint:
    return "module-hint";
  case OriginKind::UnknownArgHint:
    return "unknown-arg-hint";
  case OriginKind::EvalBody:
    return "eval-body";
  case OriginKind::NonRelationalHint:
    return "non-relational-hint";
  case OriginKind::OverApprox:
    return "over-approx";
  }
  return "?";
}

/// One interned origin.
struct ProvOrigin {
  OriginKind Kind = OriginKind::Ast;
  /// Where the mechanism's evidence lives: the hinted dynamic-access site,
  /// the eval call, the builtin call site. Invalid for Ast.
  SourceLoc Loc;
  /// Kind-specific payload (the BuiltinId for Builtin origins).
  uint32_t Extra = 0;
};

/// Interns origins to dense ids. Id 0 is the implicit Ast origin; intern()
/// never returns it for non-Ast kinds. Owned by StaticAnalysis, populated
/// only when explain recording is on.
class OriginTable {
public:
  OriginTable() { Origins.push_back(ProvOrigin()); }

  uint32_t intern(OriginKind K, SourceLoc Loc, uint32_t Extra = 0) {
    if (K == OriginKind::Ast)
      return 0;
    auto Key = std::make_tuple(uint8_t(K), Loc.key(), Extra);
    auto [It, New] = Index.emplace(Key, uint32_t(Origins.size()));
    if (New)
      Origins.push_back(ProvOrigin{K, Loc, Extra});
    return It->second;
  }

  const ProvOrigin &origin(uint32_t Id) const { return Origins[Id]; }
  size_t size() const { return Origins.size(); }

private:
  std::vector<ProvOrigin> Origins;
  std::map<std::tuple<uint8_t, uint64_t, uint32_t>, uint32_t> Index;
};

} // namespace jsai

#endif // JSAI_EXPLAIN_PROVENANCE_H
