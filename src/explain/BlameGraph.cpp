//===- BlameGraph.cpp -----------------------------------------------------===//

#include "explain/BlameGraph.h"

#include <set>

using namespace jsai;

namespace {
/// From-chains are short in practice (one hop per subset edge on the
/// token's first path); the bound only matters for merge-induced cycles
/// the visited-set already breaks.
constexpr size_t MaxChain = 256;
} // namespace

std::vector<CVarId> BlameGraph::carriersOf(TokenId T) const {
  std::vector<CVarId> Out;
  for (CVarId V = 0; V != CVarId(S.numVars()); ++V) {
    if (S.representative(V) != V)
      continue;
    if (S.pointsTo(V).contains(T))
      Out.push_back(V);
  }
  return Out;
}

std::vector<CVarId> BlameGraph::chainTo(CVarId V, TokenId T) const {
  std::vector<CVarId> Chain;
  if (V >= S.numVars())
    return Chain;
  CVarId Cur = S.representative(V);
  std::set<CVarId> Visited;
  while (Chain.size() < MaxChain && Visited.insert(Cur).second) {
    const TokenArrival *A = S.arrival(Cur, T);
    if (A == nullptr)
      break; // Not carried / not recorded: no chain at all.
    Chain.push_back(Cur);
    if (A->From == ~CVarId(0))
      break; // Direct insertion: the chain's source.
    Cur = S.representative(A->From);
  }
  return Chain;
}

ProvOriginId BlameGraph::blameOrigin(CVarId V, TokenId T) const {
  if (V >= S.numVars())
    return 0;
  CVarId Cur = S.representative(V);
  std::set<CVarId> Visited;
  size_t Steps = 0;
  while (Steps++ < MaxChain && Visited.insert(Cur).second) {
    const TokenArrival *A = S.arrival(Cur, T);
    if (A == nullptr)
      break;
    if (A->Origin != 0)
      return A->Origin; // Nearest non-AST injection wins.
    if (A->From == ~CVarId(0))
      break;
    Cur = S.representative(A->From);
  }
  return 0;
}
