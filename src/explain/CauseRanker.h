//===- CauseRanker.h - Total classifier for missed call edges ---*- C++ -*-===//
///
/// \file
/// Assigns every missed dynamic call edge exactly one CauseKind, testing
/// causes in rank order (EvalCode first, DataflowGap as the catch-all) so
/// the classification is total and bench_blame_breakdown's cause
/// frequencies sum to 100% of the misses.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_EXPLAIN_CAUSERANKER_H
#define JSAI_EXPLAIN_CAUSERANKER_H

#include "explain/Explain.h"

#include <map>

namespace jsai {

class CauseRanker {
public:
  CauseRanker(const StaticAnalysis::ExplainView &V, const ExplainInputs &In);

  struct Verdict {
    CauseKind Cause = CauseKind::DataflowGap;
    std::string Detail;
    /// The call's site record, when the site was built statically.
    const StaticAnalysis::SiteRecord *Site = nullptr;
    /// The callee's definition, when statically known.
    const FunctionDef *Callee = nullptr;
  };

  /// Classifies the missed dynamic edge \p SiteLoc -> \p CalleeLoc.
  Verdict classify(SourceLoc SiteLoc, SourceLoc CalleeLoc) const;

private:
  const StaticAnalysis::ExplainView &V;
  const ExplainInputs &In;
  /// Call sites by location key (accessor-triggered sites share a node
  /// with the triggering access; first record wins, matching build order).
  std::map<uint64_t, const StaticAnalysis::SiteRecord *> SiteByLoc;
  /// Non-module function definitions by location key.
  std::map<uint64_t, const FunctionDef *> FnByLoc;
};

} // namespace jsai

#endif // JSAI_EXPLAIN_CAUSERANKER_H
