//===- CauseRanker.cpp ----------------------------------------------------===//

#include "explain/CauseRanker.h"

#include "interp/ModuleLoader.h"

using namespace jsai;

CauseRanker::CauseRanker(const StaticAnalysis::ExplainView &V,
                         const ExplainInputs &In)
    : V(V), In(In) {
  for (const StaticAnalysis::SiteRecord &SR : *V.Sites)
    SiteByLoc.emplace(SR.Site->loc().key(), &SR);
  for (const auto &F : V.Loader->context().functions())
    if (!F->isModule())
      FnByLoc.emplace(F->loc().key(), F.get());
}

/// The member access a computed-callee call dispatches on (obj[e]() reads
/// obj[e] first); invalid for other call shapes.
static SourceLoc computedAccessLoc(const Node *Site) {
  const Expr *Callee = nullptr;
  if (const auto *C = dyn_cast<CallExpr>(Site))
    Callee = C->callee();
  else if (const auto *N = dyn_cast<NewExpr>(Site))
    Callee = N->callee();
  if (const auto *M = dyn_cast<MemberExpr>(Callee))
    if (M->isComputed())
      return M->loc();
  return SourceLoc::invalid();
}

CauseRanker::Verdict CauseRanker::classify(SourceLoc SiteLoc,
                                           SourceLoc CalleeLoc) const {
  Verdict Out;

  auto SiteIt = SiteByLoc.find(SiteLoc.key());
  Out.Site = SiteIt == SiteByLoc.end() ? nullptr : SiteIt->second;
  auto FnIt = FnByLoc.find(CalleeLoc.key());
  Out.Callee = FnIt == FnByLoc.end() ? nullptr : FnIt->second;

  // 1. EvalCode: the site or the callee is invisible to the static
  //    analysis (only dynamically materialized code contains it).
  if (Out.Site == nullptr) {
    Out.Cause = CauseKind::EvalCode;
    Out.Detail = "call site not present in statically analyzed code";
    return Out;
  }
  if (Out.Callee == nullptr) {
    Out.Cause = CauseKind::EvalCode;
    Out.Detail = "callee definition not statically known";
    return Out;
  }
  if (Out.Callee->isInEval() && !V.Opts->UseEvalBodyAnalysis) {
    Out.Cause = CauseKind::EvalCode;
    Out.Detail = "callee defined inside eval; eval-body analysis is off";
    return Out;
  }

  // 2. UnmodeledBuiltin: the call dispatches through a modeled builtin
  //    whose dataflow model failed to propagate this callee.
  if (Out.Site->CalleeVar != ~CVarId(0)) {
    const AdaptiveSet &Callees = V.S->pointsTo(Out.Site->CalleeVar);
    TokenId BuiltinTok = ~TokenId(0);
    Callees.forEachWhile([&](TokenId T) {
      if (V.TF->token(T).K != AbsValue::Kind::Builtin)
        return true;
      BuiltinTok = T;
      return false;
    });
    if (BuiltinTok != ~TokenId(0)) {
      Out.Cause = CauseKind::UnmodeledBuiltin;
      Out.Detail =
          "call dispatches through " + V.TF->describe(BuiltinTok) +
          " whose model does not propagate this callee";
      return Out;
    }
  }

  // 3-5. The dynamic-dispatch causes, for computed-callee sites only.
  if (Out.Site->ComputedCallee) {
    if (!(V.Opts->Mode == AnalysisMode::Hints && V.Opts->UseReadHints)) {
      Out.Cause = CauseKind::MissingHint;
      Out.Detail = "dynamic-property callee; read hints not applied in "
                   "this analysis mode";
      return Out;
    }
    SourceLoc AccessLoc = computedAccessLoc(Out.Site->Site);
    bool HaveHint = V.Hints != nullptr && AccessLoc.isValid() &&
                    V.Hints->readHints().count(AccessLoc) != 0;
    if (HaveHint) {
      Out.Cause = CauseKind::UnresolvedDynamicProperty;
      Out.Detail = "read hints exist at the access site but none resolved "
                   "this callee";
      return Out;
    }
    if (In.ApproxAborts > 0) {
      Out.Cause = CauseKind::ApproxBudget;
      Out.Detail = "no read hint at the access site; approximate "
                   "interpretation aborted " +
                   std::to_string(In.ApproxAborts) +
                   " execution(s) on a budget";
      return Out;
    }
    Out.Cause = CauseKind::MissingHint;
    Out.Detail =
        "no read hint recorded at the access site (access never observed "
        "by approximate interpretation)";
    return Out;
  }

  // 6. DataflowGap: everything is statically visible, yet the callee token
  //    never reached the callee variable.
  Out.Cause = CauseKind::DataflowGap;
  Out.Detail =
      "callee token never reached the call through subset constraints";
  return Out;
}
