//===- WitnessPrinter.cpp -------------------------------------------------===//

#include "explain/WitnessPrinter.h"

#include "interp/ModuleLoader.h"

using namespace jsai;

std::string WitnessPrinter::renderLoc(SourceLoc Loc) const {
  return V.Loader->context().files().format(Loc);
}

std::string WitnessPrinter::renderFunction(const FunctionDef &F) const {
  const AstContext &Ctx = V.Loader->context();
  std::string Name =
      F.name() == InvalidSymbol ? "<anon>" : Ctx.strings().str(F.name());
  return Name + "@" + renderLoc(F.loc());
}

std::string WitnessPrinter::renderToken(TokenId T) const {
  return V.TF->describe(T);
}

std::string WitnessPrinter::renderVar(CVarId Id) const {
  const AstContext &Ctx = V.Loader->context();
  const CVar &Var = V.VF->var(Id);
  switch (Var.K) {
  case CVar::Kind::Expr:
    return "expr@" + renderLoc(Ctx.node(Var.A)->loc());
  case CVar::Kind::Decl: {
    const VarDecl &D = *Ctx.vars()[Var.A];
    return "var:" + Ctx.strings().str(D.name()) + "@" + renderLoc(D.loc());
  }
  case CVar::Kind::Prop:
    return "prop:" + renderToken(Var.A) + "." + Ctx.strings().str(Var.B);
  case CVar::Kind::Ret:
    return "ret:" + renderFunction(*Ctx.function(Var.A));
  case CVar::Kind::This:
    return "this:" + renderFunction(*Ctx.function(Var.A));
  case CVar::Kind::Global:
    return "global:" + Ctx.strings().str(Var.A);
  }
  return "?";
}

std::string WitnessPrinter::renderOrigin(ProvOriginId Id) const {
  const ProvOrigin &O = V.Origins->origin(Id);
  if (O.Kind == OriginKind::Ast)
    return "ast";
  std::string Out = originKindName(O.Kind);
  if (O.Kind == OriginKind::Builtin)
    Out += "#" + std::to_string(O.Extra);
  Out += "@" + renderLoc(O.Loc);
  return Out;
}
