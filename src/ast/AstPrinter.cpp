//===- AstPrinter.cpp -----------------------------------------------------===//

#include "ast/AstPrinter.h"

#include "support/JsNumber.h"

using namespace jsai;

static void indentBy(int Indent, std::string &Out) {
  Out.append(size_t(Indent) * 2, ' ');
}

std::string AstPrinter::print(const Node *N) const {
  std::string Out;
  printNode(N, 0, Out);
  return Out;
}

std::string AstPrinter::printFunction(const FunctionDef *F) const {
  std::string Out;
  printFunctionInto(F, 0, Out);
  return Out;
}

void AstPrinter::printFunctionInto(const FunctionDef *F, int Indent,
                                   std::string &Out) const {
  indentBy(Indent, Out);
  Out += F->isModule() ? "(module-function" : "(function";
  if (F->isArrow())
    Out += " arrow";
  if (F->name() != InvalidSymbol) {
    Out += " ";
    Out += Ctx.strings().str(F->name());
  }
  Out += " (params";
  for (const VarDecl *P : F->params()) {
    Out += " ";
    Out += Ctx.strings().str(P->name());
  }
  Out += ")\n";
  printNode(F->body(), Indent + 1, Out);
  indentBy(Indent, Out);
  Out += ")\n";
}

void AstPrinter::printNode(const Node *N, int Indent, std::string &Out) const {
  if (!N) {
    indentBy(Indent, Out);
    Out += "(null)\n";
    return;
  }
  indentBy(Indent, Out);
  switch (N->kind()) {
  case NodeKind::NumberLit:
    Out += "(number " + jsNumberToString(cast<NumberLit>(N)->value()) + ")\n";
    return;
  case NodeKind::StringLit:
    Out += "(string \"" + Ctx.strings().str(cast<StringLit>(N)->value()) +
           "\")\n";
    return;
  case NodeKind::BoolLit:
    Out += cast<BoolLit>(N)->value() ? "(true)\n" : "(false)\n";
    return;
  case NodeKind::NullLit:
    Out += "(null-lit)\n";
    return;
  case NodeKind::UndefinedLit:
    Out += "(undefined)\n";
    return;
  case NodeKind::Ident: {
    const auto *I = cast<Ident>(N);
    Out += "(ident " + Ctx.strings().str(I->name());
    if (!I->decl())
      Out += " global";
    Out += ")\n";
    return;
  }
  case NodeKind::This:
    Out += "(this)\n";
    return;
  case NodeKind::ObjectLit: {
    Out += "(object\n";
    for (const ObjectProperty &P : cast<ObjectLit>(N)->properties()) {
      indentBy(Indent + 1, Out);
      if (P.KeyExpr) {
        Out += "(computed-prop\n";
        printNode(P.KeyExpr, Indent + 2, Out);
      } else {
        Out += "(prop " + Ctx.strings().str(P.Key) + "\n";
      }
      printNode(P.Value, Indent + 2, Out);
      indentBy(Indent + 1, Out);
      Out += ")\n";
    }
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::ArrayLit: {
    Out += "(array\n";
    for (const Expr *E : cast<ArrayLit>(N)->elements())
      printNode(E, Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::FunctionExpr:
    Out += "(function-expr\n";
    printFunctionInto(cast<FunctionExpr>(N)->def(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Unary: {
    static const char *Names[] = {"neg",    "plus",   "not", "bitnot",
                                  "typeof", "delete", "void"};
    Out += std::string("(unary ") +
           Names[size_t(cast<UnaryExpr>(N)->op())] + "\n";
    printNode(cast<UnaryExpr>(N)->operand(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Binary: {
    static const char *Names[] = {
        "+",  "-",  "*",   "/",  "%",  "==", "===", "!=", "!==", "<",
        "<=", ">",  ">=",  "&",  "|",  "^",  "<<",  ">>", "in",  "instanceof"};
    Out += std::string("(binary ") +
           Names[size_t(cast<BinaryExpr>(N)->op())] + "\n";
    printNode(cast<BinaryExpr>(N)->lhs(), Indent + 1, Out);
    printNode(cast<BinaryExpr>(N)->rhs(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Logical: {
    static const char *Names[] = {"&&", "||", "??"};
    Out += std::string("(logical ") +
           Names[size_t(cast<LogicalExpr>(N)->op())] + "\n";
    printNode(cast<LogicalExpr>(N)->lhs(), Indent + 1, Out);
    printNode(cast<LogicalExpr>(N)->rhs(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Conditional:
    Out += "(conditional\n";
    printNode(cast<ConditionalExpr>(N)->cond(), Indent + 1, Out);
    printNode(cast<ConditionalExpr>(N)->thenExpr(), Indent + 1, Out);
    printNode(cast<ConditionalExpr>(N)->elseExpr(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Assign: {
    static const char *Names[] = {"=", "+=", "-=", "*=", "/=", "||="};
    Out += std::string("(assign ") +
           Names[size_t(cast<AssignExpr>(N)->op())] + "\n";
    printNode(cast<AssignExpr>(N)->target(), Indent + 1, Out);
    printNode(cast<AssignExpr>(N)->value(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Update: {
    const auto *U = cast<UpdateExpr>(N);
    Out += std::string("(update ") + (U->isIncrement() ? "++" : "--") +
           (U->isPrefix() ? " prefix" : " postfix") + "\n";
    printNode(U->target(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Call: {
    Out += "(call\n";
    printNode(cast<CallExpr>(N)->callee(), Indent + 1, Out);
    for (const Expr *A : cast<CallExpr>(N)->args())
      printNode(A, Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::New: {
    Out += "(new\n";
    printNode(cast<NewExpr>(N)->callee(), Indent + 1, Out);
    for (const Expr *A : cast<NewExpr>(N)->args())
      printNode(A, Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Member: {
    const auto *M = cast<MemberExpr>(N);
    if (M->isComputed()) {
      Out += "(member-dyn\n";
      printNode(M->object(), Indent + 1, Out);
      printNode(M->index(), Indent + 1, Out);
    } else {
      Out += "(member " + Ctx.strings().str(M->name()) + "\n";
      printNode(M->object(), Indent + 1, Out);
    }
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Sequence:
    Out += "(sequence\n";
    for (const Expr *E : cast<SequenceExpr>(N)->exprs())
      printNode(E, Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::ExprStmt:
    Out += "(expr-stmt\n";
    printNode(cast<ExprStmt>(N)->expr(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::VarDeclStmt: {
    Out += "(var-decl\n";
    for (const VarDeclarator &D : cast<VarDeclStmt>(N)->declarators()) {
      indentBy(Indent + 1, Out);
      Out += "(declarator " + Ctx.strings().str(D.Decl->name()) + "\n";
      printNode(D.Init, Indent + 2, Out);
      indentBy(Indent + 1, Out);
      Out += ")\n";
    }
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::FunctionDeclStmt:
    Out += "(function-decl\n";
    printFunctionInto(cast<FunctionDeclStmt>(N)->def(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Block:
    Out += "(block\n";
    for (const Stmt *S : cast<BlockStmt>(N)->body())
      printNode(S, Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::If:
    Out += "(if\n";
    printNode(cast<IfStmt>(N)->cond(), Indent + 1, Out);
    printNode(cast<IfStmt>(N)->thenStmt(), Indent + 1, Out);
    if (cast<IfStmt>(N)->elseStmt())
      printNode(cast<IfStmt>(N)->elseStmt(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::While:
    Out += "(while\n";
    printNode(cast<WhileStmt>(N)->cond(), Indent + 1, Out);
    printNode(cast<WhileStmt>(N)->body(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::DoWhile:
    Out += "(do-while\n";
    printNode(cast<DoWhileStmt>(N)->body(), Indent + 1, Out);
    printNode(cast<DoWhileStmt>(N)->cond(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::For:
    Out += "(for\n";
    printNode(cast<ForStmt>(N)->init(), Indent + 1, Out);
    printNode(cast<ForStmt>(N)->cond(), Indent + 1, Out);
    printNode(cast<ForStmt>(N)->step(), Indent + 1, Out);
    printNode(cast<ForStmt>(N)->body(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::ForIn: {
    const auto *L = cast<ForInStmt>(N);
    Out += L->isOf() ? "(for-of" : "(for-in";
    if (L->decl())
      Out += " " + Ctx.strings().str(L->decl()->name());
    Out += "\n";
    if (L->target())
      printNode(L->target(), Indent + 1, Out);
    printNode(L->object(), Indent + 1, Out);
    printNode(L->body(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Return:
    Out += "(return\n";
    printNode(cast<ReturnStmt>(N)->value(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Break:
    Out += "(break)\n";
    return;
  case NodeKind::Continue:
    Out += "(continue)\n";
    return;
  case NodeKind::Throw:
    Out += "(throw\n";
    printNode(cast<ThrowStmt>(N)->value(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Try:
    Out += "(try\n";
    printNode(cast<TryStmt>(N)->body(), Indent + 1, Out);
    if (cast<TryStmt>(N)->handler())
      printNode(cast<TryStmt>(N)->handler(), Indent + 1, Out);
    if (cast<TryStmt>(N)->finalizer())
      printNode(cast<TryStmt>(N)->finalizer(), Indent + 1, Out);
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  case NodeKind::Switch: {
    Out += "(switch\n";
    printNode(cast<SwitchStmt>(N)->discriminant(), Indent + 1, Out);
    for (const SwitchCase &C : cast<SwitchStmt>(N)->cases()) {
      indentBy(Indent + 1, Out);
      Out += C.Test ? "(case\n" : "(default\n";
      if (C.Test)
        printNode(C.Test, Indent + 2, Out);
      for (const Stmt *S : C.Body)
        printNode(S, Indent + 2, Out);
      indentBy(Indent + 1, Out);
      Out += ")\n";
    }
    indentBy(Indent, Out);
    Out += ")\n";
    return;
  }
  case NodeKind::Empty:
    Out += "(empty)\n";
    return;
  }
  Out += "(unknown)\n";
}
