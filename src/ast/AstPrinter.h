//===- AstPrinter.h - Debug dump of MiniJS ASTs -----------------*- C++ -*-===//
///
/// \file
/// Renders ASTs as indented S-expressions. Used by parser tests and for
/// debugging; the output format is stable.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_AST_ASTPRINTER_H
#define JSAI_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace jsai {

/// Pretty-prints AST subtrees.
class AstPrinter {
public:
  explicit AstPrinter(const AstContext &Ctx) : Ctx(Ctx) {}

  std::string print(const Node *N) const;
  std::string printFunction(const FunctionDef *F) const;

private:
  void printNode(const Node *N, int Indent, std::string &Out) const;
  void printFunctionInto(const FunctionDef *F, int Indent,
                         std::string &Out) const;

  const AstContext &Ctx;
};

} // namespace jsai

#endif // JSAI_AST_ASTPRINTER_H
