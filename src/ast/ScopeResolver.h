//===- ScopeResolver.h - Identifier binding ---------------------*- C++ -*-===//
///
/// \file
/// Binds every Ident to the lexically nearest declaration, walking the
/// FunctionDef parent chain (MiniJS is function-scoped). Unresolved
/// identifiers keep a null decl and denote globals / builtins; the concrete
/// interpreter resolves those dynamically and the static analysis models
/// known globals (e.g. `Object`, `console`) explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_AST_SCOPERESOLVER_H
#define JSAI_AST_SCOPERESOLVER_H

#include "ast/Ast.h"

namespace jsai {

/// Resolves identifier uses to declarations for one module (or eval
/// function). Idempotent.
class ScopeResolver {
public:
  explicit ScopeResolver(AstContext &Ctx) : Ctx(Ctx) {}

  /// Resolves the whole function tree rooted at \p Root (typically a module
  /// function, also used for eval roots).
  void resolveFunction(FunctionDef *Root);

  /// Resolves every module currently in the context.
  void resolveAll();

private:
  void visitStmt(Stmt *S, FunctionDef *F);
  void visitExpr(Expr *E, FunctionDef *F);

  AstContext &Ctx;
};

} // namespace jsai

#endif // JSAI_AST_SCOPERESOLVER_H
