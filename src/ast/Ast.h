//===- Ast.h - MiniJS abstract syntax trees ---------------------*- C++ -*-===//
///
/// \file
/// AST for MiniJS. Nodes are arena-allocated in an AstContext that owns every
/// module of a project; node / function / variable ids are dense, which lets
/// the static analysis index by plain vectors and keeps all iteration orders
/// deterministic.
///
/// Dispatch uses LLVM-style kind enums and classof (no RTTI).
///
/// MiniJS semantics deviations from full JavaScript (documented in DESIGN.md):
/// `let`/`const` are function-scoped like `var`; generators/async/regex are
/// not supported; numbers are IEEE doubles (as in JS). Getters/setters ARE
/// supported (object literals and property descriptors).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_AST_AST_H
#define JSAI_AST_AST_H

#include "support/SourceLoc.h"
#include "support/StringPool.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace jsai {

class FunctionDef;
class VarDecl;
class BlockStmt;

/// Dense id of an AST node within its AstContext.
using NodeId = uint32_t;
/// Dense id of a function definition within its AstContext.
using FunctionId = uint32_t;
/// Dense id of a variable declaration within its AstContext.
using VarId = uint32_t;

enum class NodeKind : uint8_t {
  // Expressions (keep FirstExpr..LastExpr contiguous).
  NumberLit,
  StringLit,
  BoolLit,
  NullLit,
  UndefinedLit,
  Ident,
  This,
  ObjectLit,
  ArrayLit,
  FunctionExpr,
  Unary,
  Binary,
  Logical,
  Conditional,
  Assign,
  Update,
  Call,
  New,
  Member,
  Sequence,
  // Statements (keep FirstStmt..LastStmt contiguous).
  ExprStmt,
  VarDeclStmt,
  FunctionDeclStmt,
  Block,
  If,
  While,
  DoWhile,
  For,
  ForIn,
  Return,
  Break,
  Continue,
  Throw,
  Try,
  Switch,
  Empty,
};

inline constexpr NodeKind FirstExprKind = NodeKind::NumberLit;
inline constexpr NodeKind LastExprKind = NodeKind::Sequence;
inline constexpr NodeKind FirstStmtKind = NodeKind::ExprStmt;
inline constexpr NodeKind LastStmtKind = NodeKind::Empty;

/// Root of the AST node hierarchy.
class Node {
public:
  NodeKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  NodeId id() const { return Id; }

protected:
  Node(NodeKind Kind, SourceLoc Loc, NodeId Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  NodeKind Kind;
  SourceLoc Loc;
  NodeId Id;
};

/// LLVM-style checked casts over NodeKind.
template <typename T> bool isa(const Node *N) { return T::classof(N); }
template <typename T> T *cast(Node *N) {
  assert(T::classof(N) && "invalid cast");
  return static_cast<T *>(N);
}
template <typename T> const T *cast(const Node *N) {
  assert(T::classof(N) && "invalid cast");
  return static_cast<const T *>(N);
}
template <typename T> T *dyn_cast(Node *N) {
  return N && T::classof(N) ? static_cast<T *>(N) : nullptr;
}
template <typename T> const T *dyn_cast(const Node *N) {
  return N && T::classof(N) ? static_cast<const T *>(N) : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

class Expr : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= FirstExprKind && N->kind() <= LastExprKind;
  }

protected:
  using Node::Node;
};

/// Numeric literal (IEEE double, as in JavaScript).
class NumberLit : public Expr {
public:
  NumberLit(SourceLoc Loc, NodeId Id, double Value)
      : Expr(NodeKind::NumberLit, Loc, Id), Value(Value) {}
  double value() const { return Value; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::NumberLit; }

private:
  double Value;
};

/// String literal; the contents are interned.
class StringLit : public Expr {
public:
  StringLit(SourceLoc Loc, NodeId Id, Symbol Value)
      : Expr(NodeKind::StringLit, Loc, Id), Value(Value) {}
  Symbol value() const { return Value; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::StringLit; }

private:
  Symbol Value;
};

class BoolLit : public Expr {
public:
  BoolLit(SourceLoc Loc, NodeId Id, bool Value)
      : Expr(NodeKind::BoolLit, Loc, Id), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::BoolLit; }

private:
  bool Value;
};

class NullLit : public Expr {
public:
  NullLit(SourceLoc Loc, NodeId Id) : Expr(NodeKind::NullLit, Loc, Id) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::NullLit; }
};

class UndefinedLit : public Expr {
public:
  UndefinedLit(SourceLoc Loc, NodeId Id)
      : Expr(NodeKind::UndefinedLit, Loc, Id) {}
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::UndefinedLit;
  }
};

/// Variable reference. After scope resolution, decl() names the lexically
/// nearest declaration, or nullptr for globals / unresolved names.
class Ident : public Expr {
public:
  Ident(SourceLoc Loc, NodeId Id, Symbol Name)
      : Expr(NodeKind::Ident, Loc, Id), Name(Name) {}
  Symbol name() const { return Name; }
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Ident; }

private:
  Symbol Name;
  VarDecl *Decl = nullptr;
};

class ThisExpr : public Expr {
public:
  ThisExpr(SourceLoc Loc, NodeId Id) : Expr(NodeKind::This, Loc, Id) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::This; }
};

/// Kind of an object-literal entry: plain value, `get name() {}`, or
/// `set name(v) {}`.
enum class PropertyKind : uint8_t { Value, Getter, Setter };

/// One `key: value` entry of an object literal. Computed keys (`[e]: v`)
/// have KeyExpr set and Key == InvalidSymbol; they behave like dynamic
/// property writes in both analyses. Accessor entries carry a FunctionExpr
/// in Value.
struct ObjectProperty {
  Symbol Key = InvalidSymbol;
  Expr *KeyExpr = nullptr;
  Expr *Value = nullptr;
  PropertyKind PKind = PropertyKind::Value;
};

/// Object literal `{...}` — an allocation site.
class ObjectLit : public Expr {
public:
  ObjectLit(SourceLoc Loc, NodeId Id, std::vector<ObjectProperty> Props)
      : Expr(NodeKind::ObjectLit, Loc, Id), Props(std::move(Props)) {}
  const std::vector<ObjectProperty> &properties() const { return Props; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::ObjectLit; }

private:
  std::vector<ObjectProperty> Props;
};

/// Array literal `[...]` — an allocation site.
class ArrayLit : public Expr {
public:
  ArrayLit(SourceLoc Loc, NodeId Id, std::vector<Expr *> Elements)
      : Expr(NodeKind::ArrayLit, Loc, Id), Elements(std::move(Elements)) {}
  const std::vector<Expr *> &elements() const { return Elements; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::ArrayLit; }

private:
  std::vector<Expr *> Elements;
};

/// Function expression / arrow function — an allocation site. Function
/// declarations wrap the same FunctionDef in a FunctionDeclStmt.
class FunctionExpr : public Expr {
public:
  FunctionExpr(SourceLoc Loc, NodeId Id, FunctionDef *Def)
      : Expr(NodeKind::FunctionExpr, Loc, Id), Def(Def) {}
  FunctionDef *def() const { return Def; }
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FunctionExpr;
  }

private:
  FunctionDef *Def;
};

enum class UnaryOp : uint8_t { Neg, Plus, Not, BitNot, Typeof, Delete, Void };

class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, NodeId Id, UnaryOp Op, Expr *Operand)
      : Expr(NodeKind::Unary, Loc, Id), Op(Op), Operand(Operand) {}
  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Unary; }

private:
  UnaryOp Op;
  Expr *Operand;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  EqLoose,
  EqStrict,
  NeLoose,
  NeStrict,
  Lt,
  Le,
  Gt,
  Ge,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  In,
  Instanceof,
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, NodeId Id, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::Binary, Loc, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Binary; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

enum class LogicalOp : uint8_t { And, Or, Nullish };

/// Short-circuiting `&&` / `||` / `??`.
class LogicalExpr : public Expr {
public:
  LogicalExpr(SourceLoc Loc, NodeId Id, LogicalOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(NodeKind::Logical, Loc, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  LogicalOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Logical; }

private:
  LogicalOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, NodeId Id, Expr *Cond, Expr *Then, Expr *Else)
      : Expr(NodeKind::Conditional, Loc, Id), Cond(Cond), Then(Then),
        Else(Else) {}
  Expr *cond() const { return Cond; }
  Expr *thenExpr() const { return Then; }
  Expr *elseExpr() const { return Else; }
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *Then;
  Expr *Else;
};

enum class AssignOp : uint8_t { Assign, Add, Sub, Mul, Div, OrOr };

/// Assignment; the target is an Ident or a Member expression.
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, NodeId Id, AssignOp Op, Expr *Target, Expr *Value)
      : Expr(NodeKind::Assign, Loc, Id), Op(Op), Target(Target), Value(Value) {}
  AssignOp op() const { return Op; }
  Expr *target() const { return Target; }
  Expr *value() const { return Value; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Assign; }

private:
  AssignOp Op;
  Expr *Target;
  Expr *Value;
};

/// `++` / `--`, prefix or postfix.
class UpdateExpr : public Expr {
public:
  UpdateExpr(SourceLoc Loc, NodeId Id, bool IsIncrement, bool IsPrefix,
             Expr *Target)
      : Expr(NodeKind::Update, Loc, Id), IsIncrement(IsIncrement),
        IsPrefix(IsPrefix), Target(Target) {}
  bool isIncrement() const { return IsIncrement; }
  bool isPrefix() const { return IsPrefix; }
  Expr *target() const { return Target; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Update; }

private:
  bool IsIncrement;
  bool IsPrefix;
  Expr *Target;
};

/// Function call. The node's location is the call-site location used by both
/// call graphs.
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, NodeId Id, Expr *Callee, std::vector<Expr *> Args)
      : Expr(NodeKind::Call, Loc, Id), Callee(Callee), Args(std::move(Args)) {}
  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// `new F(...)` — an allocation site.
class NewExpr : public Expr {
public:
  NewExpr(SourceLoc Loc, NodeId Id, Expr *Callee, std::vector<Expr *> Args)
      : Expr(NodeKind::New, Loc, Id), Callee(Callee), Args(std::move(Args)) {}
  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::New; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
};

/// Property access: `E.p` (fixed, isComputed() == false) or `E[E']`
/// (dynamic, isComputed() == true). Dynamic accesses are the operations the
/// paper's hints target.
class MemberExpr : public Expr {
public:
  /// Fixed-name access `E.p`.
  MemberExpr(SourceLoc Loc, NodeId Id, Expr *Object, Symbol Name)
      : Expr(NodeKind::Member, Loc, Id), Object(Object), Name(Name) {}
  /// Computed access `E[E']`.
  MemberExpr(SourceLoc Loc, NodeId Id, Expr *Object, Expr *Index)
      : Expr(NodeKind::Member, Loc, Id), Object(Object), Index(Index) {}

  Expr *object() const { return Object; }
  bool isComputed() const { return Index != nullptr; }
  Symbol name() const {
    assert(!isComputed() && "fixed name of computed member access");
    return Name;
  }
  Expr *index() const {
    assert(isComputed() && "index of fixed member access");
    return Index;
  }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Member; }

private:
  Expr *Object;
  Symbol Name = InvalidSymbol;
  Expr *Index = nullptr;
};

/// Comma expression `a, b`.
class SequenceExpr : public Expr {
public:
  SequenceExpr(SourceLoc Loc, NodeId Id, std::vector<Expr *> Exprs)
      : Expr(NodeKind::Sequence, Loc, Id), Exprs(std::move(Exprs)) {}
  const std::vector<Expr *> &exprs() const { return Exprs; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Sequence; }

private:
  std::vector<Expr *> Exprs;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt : public Node {
public:
  static bool classof(const Node *N) {
    return N->kind() >= FirstStmtKind && N->kind() <= LastStmtKind;
  }

protected:
  using Node::Node;
};

class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, NodeId Id, Expr *E)
      : Stmt(NodeKind::ExprStmt, Loc, Id), E(E) {}
  Expr *expr() const { return E; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::ExprStmt; }

private:
  Expr *E;
};

enum class VarKind : uint8_t { Var, Let, Const, Param, Function, Catch };

/// A variable declaration. Not an AST node itself; owned by the AstContext
/// and referenced from declarators, parameters, and resolved Idents.
class VarDecl {
public:
  VarDecl(VarId Id, Symbol Name, VarKind Kind, FunctionDef *Owner,
          SourceLoc Loc)
      : Id(Id), Name(Name), Kind(Kind), Owner(Owner), Loc(Loc) {}

  VarId id() const { return Id; }
  Symbol name() const { return Name; }
  VarKind varKind() const { return Kind; }
  /// The function whose scope declares this variable (module functions for
  /// top-level declarations).
  FunctionDef *owner() const { return Owner; }
  SourceLoc loc() const { return Loc; }

private:
  VarId Id;
  Symbol Name;
  VarKind Kind;
  FunctionDef *Owner;
  SourceLoc Loc;
};

/// One `name = init` declarator.
struct VarDeclarator {
  VarDecl *Decl = nullptr;
  Expr *Init = nullptr; // May be null.
};

class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(SourceLoc Loc, NodeId Id, VarKind Kind,
              std::vector<VarDeclarator> Decls)
      : Stmt(NodeKind::VarDeclStmt, Loc, Id), Kind(Kind),
        Decls(std::move(Decls)) {}
  VarKind varKind() const { return Kind; }
  const std::vector<VarDeclarator> &declarators() const { return Decls; }
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::VarDeclStmt;
  }

private:
  VarKind Kind;
  std::vector<VarDeclarator> Decls;
};

class FunctionDeclStmt : public Stmt {
public:
  FunctionDeclStmt(SourceLoc Loc, NodeId Id, FunctionDef *Def, VarDecl *Decl)
      : Stmt(NodeKind::FunctionDeclStmt, Loc, Id), Def(Def), Decl(Decl) {}
  FunctionDef *def() const { return Def; }
  /// The hoisted variable binding the function value.
  VarDecl *decl() const { return Decl; }
  static bool classof(const Node *N) {
    return N->kind() == NodeKind::FunctionDeclStmt;
  }

private:
  FunctionDef *Def;
  VarDecl *Decl;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, NodeId Id, std::vector<Stmt *> Body)
      : Stmt(NodeKind::Block, Loc, Id), Body(std::move(Body)) {}
  const std::vector<Stmt *> &body() const { return Body; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Block; }

private:
  std::vector<Stmt *> Body;
};

class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, NodeId Id, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(NodeKind::If, Loc, Id), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; } // May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, NodeId Id, Expr *Cond, Stmt *Body)
      : Stmt(NodeKind::While, Loc, Id), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::While; }

private:
  Expr *Cond;
  Stmt *Body;
};

class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLoc Loc, NodeId Id, Stmt *Body, Expr *Cond)
      : Stmt(NodeKind::DoWhile, Loc, Id), Body(Body), Cond(Cond) {}
  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::DoWhile; }

private:
  Stmt *Body;
  Expr *Cond;
};

class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, NodeId Id, Stmt *Init, Expr *Cond, Expr *Step,
          Stmt *Body)
      : Stmt(NodeKind::For, Loc, Id), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  Stmt *init() const { return Init; } // VarDeclStmt, ExprStmt, or null.
  Expr *cond() const { return Cond; } // May be null.
  Expr *step() const { return Step; } // May be null.
  Stmt *body() const { return Body; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

/// `for (x in E)` and `for (x of E)` share a node; isOf() distinguishes.
class ForInStmt : public Stmt {
public:
  ForInStmt(SourceLoc Loc, NodeId Id, VarDecl *Decl, Expr *Target,
            Expr *Object, Stmt *Body, bool IsOf)
      : Stmt(NodeKind::ForIn, Loc, Id), Decl(Decl), Target(Target),
        Object(Object), Body(Body), IsOf(IsOf) {}
  /// Fresh loop variable (`for (var x in ...)`), or null when assigning to
  /// an existing target expression.
  VarDecl *decl() const { return Decl; }
  Expr *target() const { return Target; } // Non-null iff decl() is null.
  Expr *object() const { return Object; }
  Stmt *body() const { return Body; }
  bool isOf() const { return IsOf; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::ForIn; }

private:
  VarDecl *Decl;
  Expr *Target;
  Expr *Object;
  Stmt *Body;
  bool IsOf;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, NodeId Id, Expr *Value)
      : Stmt(NodeKind::Return, Loc, Id), Value(Value) {}
  Expr *value() const { return Value; } // May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Return; }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  BreakStmt(SourceLoc Loc, NodeId Id) : Stmt(NodeKind::Break, Loc, Id) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt(SourceLoc Loc, NodeId Id) : Stmt(NodeKind::Continue, Loc, Id) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Continue; }
};

class ThrowStmt : public Stmt {
public:
  ThrowStmt(SourceLoc Loc, NodeId Id, Expr *Value)
      : Stmt(NodeKind::Throw, Loc, Id), Value(Value) {}
  Expr *value() const { return Value; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Throw; }

private:
  Expr *Value;
};

class TryStmt : public Stmt {
public:
  TryStmt(SourceLoc Loc, NodeId Id, BlockStmt *Body, VarDecl *CatchParam,
          BlockStmt *Handler, BlockStmt *Finalizer)
      : Stmt(NodeKind::Try, Loc, Id), Body(Body), CatchParam(CatchParam),
        Handler(Handler), Finalizer(Finalizer) {}
  BlockStmt *body() const { return Body; }
  VarDecl *catchParam() const { return CatchParam; } // May be null.
  BlockStmt *handler() const { return Handler; }     // May be null.
  BlockStmt *finalizer() const { return Finalizer; } // May be null.
  static bool classof(const Node *N) { return N->kind() == NodeKind::Try; }

private:
  BlockStmt *Body;
  VarDecl *CatchParam;
  BlockStmt *Handler;
  BlockStmt *Finalizer;
};

/// One `case E:` (Test != null) or `default:` (Test == null) clause.
struct SwitchCase {
  Expr *Test = nullptr;
  std::vector<Stmt *> Body;
};

class SwitchStmt : public Stmt {
public:
  SwitchStmt(SourceLoc Loc, NodeId Id, Expr *Disc,
             std::vector<SwitchCase> Cases)
      : Stmt(NodeKind::Switch, Loc, Id), Disc(Disc), Cases(std::move(Cases)) {}
  Expr *discriminant() const { return Disc; }
  const std::vector<SwitchCase> &cases() const { return Cases; }
  static bool classof(const Node *N) { return N->kind() == NodeKind::Switch; }

private:
  Expr *Disc;
  std::vector<SwitchCase> Cases;
};

class EmptyStmt : public Stmt {
public:
  EmptyStmt(SourceLoc Loc, NodeId Id) : Stmt(NodeKind::Empty, Loc, Id) {}
  static bool classof(const Node *N) { return N->kind() == NodeKind::Empty; }
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// A syntactic function definition: ordinary functions, arrows, and the
/// implicit module function that wraps each module's top-level code. The
/// definition's location is its allocation site; the approximate
/// interpretation worklist is keyed by FunctionDef (it executes each
/// definition at most once).
class FunctionDef {
public:
  FunctionDef(FunctionId Id, Symbol Name, SourceLoc Loc, bool IsArrow,
              bool IsModule, FunctionDef *Parent)
      : Id(Id), Name(Name), Loc(Loc), IsArrow(IsArrow), IsModule(IsModule),
        Parent(Parent) {}

  FunctionId id() const { return Id; }
  Symbol name() const { return Name; } // InvalidSymbol if anonymous.
  SourceLoc loc() const { return Loc; }
  bool isArrow() const { return IsArrow; }
  bool isModule() const { return IsModule; }
  FunctionDef *parent() const { return Parent; }

  const std::vector<VarDecl *> &params() const { return Params; }
  void setParams(std::vector<VarDecl *> P) { Params = std::move(P); }

  BlockStmt *body() const { return Body; }
  void setBody(BlockStmt *B) { Body = B; }

  /// Declarations hoisted to this function's scope (vars, let/const
  /// — function-scoped in MiniJS — and nested function declarations).
  const std::vector<VarDecl *> &hoistedVars() const { return HoistedVars; }
  void addHoistedVar(VarDecl *D) { HoistedVars.push_back(D); }

  /// Function declarations directly hoisted in this scope, in source order.
  const std::vector<FunctionDeclStmt *> &hoistedFuncs() const {
    return HoistedFuncs;
  }
  void addHoistedFunc(FunctionDeclStmt *F) { HoistedFuncs.push_back(F); }

  /// True when the definition came from dynamically generated code (eval);
  /// allocation-site recording is disabled for such functions (Section 3).
  bool isInEval() const { return InEval; }
  void setInEval(bool V) { InEval = V; }

  /// Function-scope name bindings (params, hoisted vars, nested function
  /// declarations, and the self-binding of named function expressions).
  /// Filled by the parser; used by the ScopeResolver.
  VarDecl *lookupScope(Symbol Name) const {
    auto It = Scope.find(Name);
    return It == Scope.end() ? nullptr : It->second;
  }
  void declareInScope(Symbol Name, VarDecl *D) { Scope[Name] = D; }

private:
  FunctionId Id;
  Symbol Name;
  SourceLoc Loc;
  bool IsArrow;
  bool IsModule;
  bool InEval = false;
  FunctionDef *Parent;
  std::vector<VarDecl *> Params;
  BlockStmt *Body = nullptr;
  std::vector<VarDecl *> HoistedVars;
  std::vector<FunctionDeclStmt *> HoistedFuncs;
  std::unordered_map<Symbol, VarDecl *> Scope;
};

/// One source module (a file). Paths use the virtual layout
/// "<package>/<file>.js"; the main application package is named "app".
struct Module {
  std::string Path;
  std::string Package;
  FileId File = InvalidFileId;
  FunctionDef *Func = nullptr;
};

//===----------------------------------------------------------------------===//
// AstContext
//===----------------------------------------------------------------------===//

/// Owns every AST node, function, variable, and module of a project, plus the
/// project's interned strings and file table. Ids handed out are dense.
class AstContext {
public:
  AstContext();

  StringPool &strings() { return Strings; }
  const StringPool &strings() const { return Strings; }
  FileTable &files() { return Files; }
  const FileTable &files() const { return Files; }

  /// Allocates a node of type \p T at \p Loc; the context assigns its NodeId.
  /// Nodes have no vtable, so ownership is type-erased with a per-type
  /// deleter instead of a virtual destructor.
  template <typename T, typename... ArgTs>
  T *create(SourceLoc Loc, ArgTs &&...Args) {
    NodeId Id = NodeId(Nodes.size());
    NodePtr Owned(new T(Loc, Id, std::forward<ArgTs>(Args)...),
                  [](Node *N) { delete static_cast<T *>(N); });
    T *Raw = static_cast<T *>(Owned.get());
    Nodes.push_back(std::move(Owned));
    return Raw;
  }

  FunctionDef *createFunction(Symbol Name, SourceLoc Loc, bool IsArrow,
                              bool IsModule, FunctionDef *Parent);
  VarDecl *createVar(Symbol Name, VarKind Kind, FunctionDef *Owner,
                     SourceLoc Loc);
  Module *createModule(std::string Path, std::string Package, FileId File);

  size_t numNodes() const { return Nodes.size(); }
  Node *node(NodeId Id) { return Nodes[Id].get(); }
  const Node *node(NodeId Id) const { return Nodes[Id].get(); }

  const std::vector<std::unique_ptr<FunctionDef>> &functions() const {
    return Functions;
  }
  FunctionDef *function(FunctionId Id) { return Functions[Id].get(); }
  const FunctionDef *function(FunctionId Id) const {
    return Functions[Id].get();
  }

  const std::vector<std::unique_ptr<VarDecl>> &vars() const { return Vars; }

  const std::vector<std::unique_ptr<Module>> &modules() const {
    return ModuleList;
  }
  /// \returns the module registered under \p Path, or nullptr.
  Module *findModule(const std::string &Path);

  /// Frequently used interned symbols.
  Symbol SymExports, SymModule, SymRequire, SymThis, SymArguments, SymProto,
      SymPrototype, SymLength, SymConstructor;

  /// Pre-interned well-known property names. Hot interpreter and builtin
  /// paths use these instead of re-interning string literals per access.
  struct WellKnownSymbols {
    Symbol Name, Message, Stack, Value, Get, Set, Id, Eval, Default,
        Enumerable, Configurable, Writable;
  };
  WellKnownSymbols WK;

private:
  StringPool Strings;
  FileTable Files;
  using NodePtr = std::unique_ptr<Node, void (*)(Node *)>;
  std::vector<NodePtr> Nodes;
  std::vector<std::unique_ptr<FunctionDef>> Functions;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  std::vector<std::unique_ptr<Module>> ModuleList;
  std::unordered_map<std::string, Module *> ModuleIndex;
};

} // namespace jsai

#endif // JSAI_AST_AST_H
