//===- ScopeResolver.cpp --------------------------------------------------===//

#include "ast/ScopeResolver.h"

#include <cassert>

using namespace jsai;

void ScopeResolver::resolveAll() {
  for (const auto &M : Ctx.modules())
    resolveFunction(M->Func);
}

void ScopeResolver::resolveFunction(FunctionDef *Root) {
  assert(Root->body() && "function has no body");
  visitStmt(Root->body(), Root);
}

static VarDecl *lookupThroughParents(FunctionDef *F, Symbol Name) {
  for (FunctionDef *S = F; S; S = S->parent())
    if (VarDecl *D = S->lookupScope(Name))
      return D;
  return nullptr;
}

void ScopeResolver::visitExpr(Expr *E, FunctionDef *F) {
  if (!E)
    return;
  switch (E->kind()) {
  case NodeKind::NumberLit:
  case NodeKind::StringLit:
  case NodeKind::BoolLit:
  case NodeKind::NullLit:
  case NodeKind::UndefinedLit:
  case NodeKind::This:
    return;
  case NodeKind::Ident: {
    auto *I = cast<Ident>(E);
    I->setDecl(lookupThroughParents(F, I->name()));
    return;
  }
  case NodeKind::ObjectLit:
    for (const ObjectProperty &P : cast<ObjectLit>(E)->properties()) {
      visitExpr(P.KeyExpr, F);
      visitExpr(P.Value, F);
    }
    return;
  case NodeKind::ArrayLit:
    for (Expr *El : cast<ArrayLit>(E)->elements())
      visitExpr(El, F);
    return;
  case NodeKind::FunctionExpr: {
    FunctionDef *Inner = cast<FunctionExpr>(E)->def();
    visitStmt(Inner->body(), Inner);
    return;
  }
  case NodeKind::Unary:
    visitExpr(cast<UnaryExpr>(E)->operand(), F);
    return;
  case NodeKind::Binary:
    visitExpr(cast<BinaryExpr>(E)->lhs(), F);
    visitExpr(cast<BinaryExpr>(E)->rhs(), F);
    return;
  case NodeKind::Logical:
    visitExpr(cast<LogicalExpr>(E)->lhs(), F);
    visitExpr(cast<LogicalExpr>(E)->rhs(), F);
    return;
  case NodeKind::Conditional:
    visitExpr(cast<ConditionalExpr>(E)->cond(), F);
    visitExpr(cast<ConditionalExpr>(E)->thenExpr(), F);
    visitExpr(cast<ConditionalExpr>(E)->elseExpr(), F);
    return;
  case NodeKind::Assign:
    visitExpr(cast<AssignExpr>(E)->target(), F);
    visitExpr(cast<AssignExpr>(E)->value(), F);
    return;
  case NodeKind::Update:
    visitExpr(cast<UpdateExpr>(E)->target(), F);
    return;
  case NodeKind::Call: {
    auto *C = cast<CallExpr>(E);
    visitExpr(C->callee(), F);
    for (Expr *A : C->args())
      visitExpr(A, F);
    return;
  }
  case NodeKind::New: {
    auto *N = cast<NewExpr>(E);
    visitExpr(N->callee(), F);
    for (Expr *A : N->args())
      visitExpr(A, F);
    return;
  }
  case NodeKind::Member: {
    auto *M = cast<MemberExpr>(E);
    visitExpr(M->object(), F);
    if (M->isComputed())
      visitExpr(M->index(), F);
    return;
  }
  case NodeKind::Sequence:
    for (Expr *X : cast<SequenceExpr>(E)->exprs())
      visitExpr(X, F);
    return;
  default:
    assert(false && "statement kind in expression visitor");
    return;
  }
}

void ScopeResolver::visitStmt(Stmt *S, FunctionDef *F) {
  if (!S)
    return;
  switch (S->kind()) {
  case NodeKind::ExprStmt:
    visitExpr(cast<ExprStmt>(S)->expr(), F);
    return;
  case NodeKind::VarDeclStmt:
    for (const VarDeclarator &D : cast<VarDeclStmt>(S)->declarators())
      visitExpr(D.Init, F);
    return;
  case NodeKind::FunctionDeclStmt: {
    FunctionDef *Inner = cast<FunctionDeclStmt>(S)->def();
    visitStmt(Inner->body(), Inner);
    return;
  }
  case NodeKind::Block:
    for (Stmt *Child : cast<BlockStmt>(S)->body())
      visitStmt(Child, F);
    return;
  case NodeKind::If: {
    auto *I = cast<IfStmt>(S);
    visitExpr(I->cond(), F);
    visitStmt(I->thenStmt(), F);
    visitStmt(I->elseStmt(), F);
    return;
  }
  case NodeKind::While:
    visitExpr(cast<WhileStmt>(S)->cond(), F);
    visitStmt(cast<WhileStmt>(S)->body(), F);
    return;
  case NodeKind::DoWhile:
    visitStmt(cast<DoWhileStmt>(S)->body(), F);
    visitExpr(cast<DoWhileStmt>(S)->cond(), F);
    return;
  case NodeKind::For: {
    auto *L = cast<ForStmt>(S);
    visitStmt(L->init(), F);
    visitExpr(L->cond(), F);
    visitExpr(L->step(), F);
    visitStmt(L->body(), F);
    return;
  }
  case NodeKind::ForIn: {
    auto *L = cast<ForInStmt>(S);
    visitExpr(L->target(), F);
    visitExpr(L->object(), F);
    visitStmt(L->body(), F);
    return;
  }
  case NodeKind::Return:
    visitExpr(cast<ReturnStmt>(S)->value(), F);
    return;
  case NodeKind::Throw:
    visitExpr(cast<ThrowStmt>(S)->value(), F);
    return;
  case NodeKind::Try: {
    auto *T = cast<TryStmt>(S);
    visitStmt(T->body(), F);
    visitStmt(T->handler(), F);
    visitStmt(T->finalizer(), F);
    return;
  }
  case NodeKind::Switch: {
    auto *W = cast<SwitchStmt>(S);
    visitExpr(W->discriminant(), F);
    for (const SwitchCase &C : W->cases()) {
      visitExpr(C.Test, F);
      for (Stmt *Child : C.Body)
        visitStmt(Child, F);
    }
    return;
  }
  case NodeKind::Break:
  case NodeKind::Continue:
  case NodeKind::Empty:
    return;
  default:
    assert(false && "expression kind in statement visitor");
    return;
  }
}
