//===- Ast.cpp ------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace jsai;

AstContext::AstContext() {
  SymExports = Strings.intern("exports");
  SymModule = Strings.intern("module");
  SymRequire = Strings.intern("require");
  SymThis = Strings.intern("this");
  SymArguments = Strings.intern("arguments");
  SymProto = Strings.intern("__proto__");
  SymPrototype = Strings.intern("prototype");
  SymLength = Strings.intern("length");
  SymConstructor = Strings.intern("constructor");
  WK.Name = Strings.intern("name");
  WK.Message = Strings.intern("message");
  WK.Stack = Strings.intern("stack");
  WK.Value = Strings.intern("value");
  WK.Get = Strings.intern("get");
  WK.Set = Strings.intern("set");
  WK.Id = Strings.intern("id");
  WK.Eval = Strings.intern("eval");
  WK.Default = Strings.intern("default");
  WK.Enumerable = Strings.intern("enumerable");
  WK.Configurable = Strings.intern("configurable");
  WK.Writable = Strings.intern("writable");
}

FunctionDef *AstContext::createFunction(Symbol Name, SourceLoc Loc,
                                        bool IsArrow, bool IsModule,
                                        FunctionDef *Parent) {
  FunctionId Id = FunctionId(Functions.size());
  Functions.push_back(std::make_unique<FunctionDef>(Id, Name, Loc, IsArrow,
                                                    IsModule, Parent));
  return Functions.back().get();
}

VarDecl *AstContext::createVar(Symbol Name, VarKind Kind, FunctionDef *Owner,
                               SourceLoc Loc) {
  VarId Id = VarId(Vars.size());
  Vars.push_back(std::make_unique<VarDecl>(Id, Name, Kind, Owner, Loc));
  return Vars.back().get();
}

Module *AstContext::createModule(std::string Path, std::string Package,
                                 FileId File) {
  auto Owned = std::make_unique<Module>();
  Owned->Path = std::move(Path);
  Owned->Package = std::move(Package);
  Owned->File = File;
  Module *Raw = Owned.get();
  ModuleList.push_back(std::move(Owned));
  ModuleIndex[Raw->Path] = Raw;
  return Raw;
}

Module *AstContext::findModule(const std::string &Path) {
  auto It = ModuleIndex.find(Path);
  return It == ModuleIndex.end() ? nullptr : It->second;
}
