//===- HintSet.h - Hints produced by approximate interpretation -*- C++ -*-===//
///
/// \file
/// The output of the dynamic pre-analysis (Section 3 of the paper):
///
///  - read hints  H_R : Loc -> P(AllocRef) — at the dynamic property read at
///    location l, an object allocated at l' was observed as the result;
///  - write hints H_W subset-of AllocRef x String x AllocRef — an object
///    allocated at l'' was written to property p of an object allocated at l.
///
/// Plus three extensions:
///  - module-load hints (Section 3): require call site -> resolved modules;
///  - eval code-string hints (Section 6);
///  - non-relational name hints (the Section 4 alternative used as an
///    ablation): per dynamic operation, the property names observed.
///
/// An AllocRef is a source location plus a flag distinguishing the implicit
/// `.prototype` object of a function from the function object itself (both
/// share the definition's location).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_APPROX_HINTSET_H
#define JSAI_APPROX_HINTSET_H

#include "support/SourceLoc.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace jsai {

/// Reference to an allocation site, the common currency between the dynamic
/// and static phases (the paper's `loc` values).
struct AllocRef {
  SourceLoc Loc;
  /// True when the object is the implicit `.prototype` of the function
  /// defined at Loc.
  bool IsPrototype = false;

  bool isValid() const { return Loc.isValid(); }

  friend bool operator==(const AllocRef &A, const AllocRef &B) {
    return A.Loc == B.Loc && A.IsPrototype == B.IsPrototype;
  }
  friend bool operator<(const AllocRef &A, const AllocRef &B) {
    if (!(A.Loc == B.Loc))
      return A.Loc < B.Loc;
    return A.IsPrototype < B.IsPrototype;
  }
};

/// One write hint (l, p, l'') in H_W.
struct WriteHint {
  AllocRef Base;
  std::string Prop;
  AllocRef Val;

  friend bool operator==(const WriteHint &A, const WriteHint &B) {
    return A.Base == B.Base && A.Prop == B.Prop && A.Val == B.Val;
  }
  friend bool operator<(const WriteHint &A, const WriteHint &B) {
    if (!(A.Base == B.Base))
      return A.Base < B.Base;
    if (A.Prop != B.Prop)
      return A.Prop < B.Prop;
    return A.Val < B.Val;
  }
};

/// The collected hints. All containers are ordered so iteration (and thus
/// the extended static analysis) is deterministic, and every insertion
/// deduplicates: recording the same read hint, write hint, name, or eval
/// code string twice leaves the set unchanged, so [DPR]/[DPW] rule
/// application never re-adds tokens per duplicate observation.
class HintSet {
public:
  //===--------------------------------------------------------------------===
  // Recording (called by the hint collector)
  //===--------------------------------------------------------------------===

  void addReadHint(SourceLoc ReadLoc, AllocRef Result);
  void addWriteHint(AllocRef Base, std::string Prop, AllocRef Val);
  void addModuleHint(SourceLoc RequireLoc, std::string ModulePath);
  void addEvalHint(SourceLoc CallLoc, std::string Code);
  /// Non-relational ablation data: property name observed at an operation.
  void addReadName(SourceLoc ReadLoc, std::string Name);
  void addWriteName(SourceLoc WriteLoc, std::string Name);
  /// Section 6 "unknown function arguments": a known property name read
  /// off the proxy p*.
  void addProxyReadName(SourceLoc ReadLoc, std::string Name);

  //===--------------------------------------------------------------------===
  // Consumption (static analysis)
  //===--------------------------------------------------------------------===

  /// H_R as a map from read-operation location to observed allocation sites.
  const std::map<SourceLoc, std::set<AllocRef>> &readHints() const {
    return ReadHints;
  }
  /// H_W.
  const std::set<WriteHint> &writeHints() const { return WriteHints; }
  const std::map<SourceLoc, std::set<std::string>> &moduleHints() const {
    return ModuleHints;
  }
  const std::vector<std::pair<SourceLoc, std::string>> &evalHints() const {
    return EvalHints;
  }
  const std::map<SourceLoc, std::set<std::string>> &readNames() const {
    return ReadNames;
  }
  const std::map<SourceLoc, std::set<std::string>> &writeNames() const {
    return WriteNames;
  }
  const std::map<SourceLoc, std::set<std::string>> &proxyReadNames() const {
    return ProxyReadNames;
  }

  /// Total number of read + write hints (the paper's per-program hint
  /// count).
  size_t size() const;

  /// Human-readable dump (for tests, examples, and EXPERIMENTS.md).
  std::string toText(const FileTable &Files) const;

  //===--------------------------------------------------------------------===
  // Reuse across analyses (Section 6, "Reusing approximate interpretation
  // results"): hints are portable via a line-based text format keyed by
  // file *paths*, so hints collected for a library can be imported into
  // any application that bundles the same library sources.
  //===--------------------------------------------------------------------===

  /// Renders all hints in the portable format.
  std::string serialize(const FileTable &Files) const;

  /// Parses hints serialized with serialize(). Entries referencing files
  /// unknown to \p Files are dropped (they could not be resolved to
  /// allocation sites anyway).
  static HintSet deserialize(const std::string &Text, const FileTable &Files);

  /// Unions \p Other into this set.
  void merge(const HintSet &Other);

  /// Structural equality over every hint kind (eval hints compare in
  /// insertion order, matching how they are consumed).
  friend bool operator==(const HintSet &A, const HintSet &B) {
    return A.ReadHints == B.ReadHints && A.WriteHints == B.WriteHints &&
           A.ModuleHints == B.ModuleHints && A.EvalHints == B.EvalHints &&
           A.ReadNames == B.ReadNames && A.WriteNames == B.WriteNames &&
           A.ProxyReadNames == B.ProxyReadNames;
  }

private:
  std::map<SourceLoc, std::set<AllocRef>> ReadHints;
  std::set<WriteHint> WriteHints;
  std::map<SourceLoc, std::set<std::string>> ModuleHints;
  /// Insertion-ordered (deterministic consumption); EvalHintIndex backs
  /// dedup at insert.
  std::vector<std::pair<SourceLoc, std::string>> EvalHints;
  std::set<std::pair<uint64_t, std::string>> EvalHintIndex;
  std::map<SourceLoc, std::set<std::string>> ReadNames;
  std::map<SourceLoc, std::set<std::string>> WriteNames;
  std::map<SourceLoc, std::set<std::string>> ProxyReadNames;
};

} // namespace jsai

#endif // JSAI_APPROX_HINTSET_H
