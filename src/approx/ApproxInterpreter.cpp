//===- ApproxInterpreter.cpp - Worklist-driven forced execution ------------===//

#include "approx/ApproxInterpreter.h"

#include <cassert>

using namespace jsai;

namespace {

/// Observer that records hints and discovers function values for the
/// worklist. The recording rules follow Section 3:
///  - reads: the result's allocation site is recorded, keyed by the read
///    operation's location;
///  - writes: the base and value allocation sites plus the property name
///    are recorded, the operation's location is ignored (it only feeds the
///    non-relational ablation);
///  - values without a recorded allocation site (builtins, eval-allocated
///    objects, proxies) produce no hints.
class HintCollector : public InterpObserver {
public:
  HintCollector(HintSet &Hints, const ApproxOptions &Opts)
      : Hints(Hints), Opts(Opts) {}

  /// Function values pending forced execution, FIFO.
  std::deque<Object *> Worklist;
  /// Function definitions already executed (or currently executing).
  std::set<const FunctionDef *> Visited;
  /// Definitions already enqueued, to keep the worklist small.
  std::set<const FunctionDef *> Enqueued;

  void onFunctionCreated(Object *FnObj, FunctionDef *Def) override {
    if (Def->isModule() || Def->isInEval())
      return;
    if (Visited.count(Def) || Enqueued.count(Def))
      return;
    Enqueued.insert(Def);
    Worklist.push_back(FnObj);
  }

  void onCall(SourceLoc CallSite, FunctionDef *Callee) override {
    (void)CallSite;
    // Rule 4 of Section 3: entering a program-defined function marks its
    // definition visited (and effectively removes it from the worklist;
    // stale worklist entries are skipped on pop).
    if (!Callee->isModule() && !Callee->isInEval())
      Visited.insert(Callee);
  }

  static AllocRef refOf(const Value &V) {
    if (!V.isObject())
      return AllocRef();
    Object *O = V.asObject();
    if (O->isProxy())
      return AllocRef();
    return AllocRef{O->birthLoc(), O->isFunctionPrototype()};
  }

  void onDynamicRead(SourceLoc ReadLoc, const std::string &PropName,
                     const Value &Result) override {
    AllocRef Ref = refOf(Result);
    if (Ref.isValid())
      Hints.addReadHint(ReadLoc, Ref);
    Hints.addReadName(ReadLoc, PropName);
  }

  void onDynamicWrite(SourceLoc OpLoc, Object *Base,
                      const std::string &PropName, const Value &Val) override {
    AllocRef BaseRef{Base->birthLoc(), Base->isFunctionPrototype()};
    AllocRef ValRef = refOf(Val);
    if (BaseRef.isValid() && ValRef.isValid())
      Hints.addWriteHint(BaseRef, PropName, ValRef);
    if (OpLoc.isValid())
      Hints.addWriteName(OpLoc, PropName);
  }

  void onProxyBaseRead(SourceLoc ReadLoc,
                       const std::string &PropName) override {
    Hints.addProxyReadName(ReadLoc, PropName);
  }

  void onModuleRequired(SourceLoc CallSite,
                        const std::string &ResolvedPath) override {
    Loaded.insert(ResolvedPath);
    if (Opts.CollectModuleHints && CallSite.isValid())
      Hints.addModuleHint(CallSite, ResolvedPath);
  }

  /// Every module path the run touched (independent of the module-hint
  /// toggle — this feeds cache-publish guards, not hints).
  std::set<std::string> Loaded;

  void onEvalCode(SourceLoc CallSite, const std::string &Code) override {
    Hints.addEvalHint(CallSite, Code);
  }

private:
  HintSet &Hints;
  const ApproxOptions &Opts;
};

} // namespace

HintSet ApproxInterpreter::run(const std::vector<std::string> &RootModules) {
  HintSet Hints;
  HintCollector Collector(Hints, Opts);

  InterpOptions IOpts;
  IOpts.ApproxMode = true;
  IOpts.MaxCallDepth = Opts.MaxCallDepth;
  IOpts.MaxLoopIterations = Opts.MaxLoopIterations;
  IOpts.MaxSteps = Opts.MaxSteps;
  IOpts.Cancel = Opts.Cancel;
  IOpts.EnableInlineCaches = Opts.EnableInlineCaches;
  IOpts.Engine = Opts.Engine;
  IOpts.VmOptimize = Opts.VmOptimize;
  IOpts.CountVmOpcodes = Opts.CountVmOpcodes;
  Interpreter I(Loader, IOpts, &Collector);

  Stats = ApproxStats();
  for (const auto &F : Loader.context().functions())
    if (!F->isModule() && !F->isInEval())
      ++Stats.NumFunctionsTotal;

  // Phase 1: load the root modules (running their top-level code discovers
  // the library modules via require and populates the worklist with the
  // function values created along the way).
  for (const std::string &Path : RootModules) {
    if (Opts.Cancel && Opts.Cancel->expired())
      break; // Deadline: keep the hints collected so far.
    I.resetExecutionBudget();
    Collector.Loaded.insert(Path);
    Completion C = I.loadModule(Path);
    ++Stats.NumModulesLoaded;
    if (C.isAbort())
      ++Stats.NumAborts;
  }

  // Phase 2: force-execute pending function values, each definition at most
  // once. Executions may create new closures, growing the worklist.
  while (!Collector.Worklist.empty()) {
    if (Opts.Cancel && Opts.Cancel->expired())
      break; // Deadline: abandon unexecuted worklist items.
    Object *Fn = Collector.Worklist.front();
    Collector.Worklist.pop_front();
    FunctionDef *Def = Fn->functionDef();
    assert(Def && "worklist holds closures only");
    if (Collector.Visited.count(Def))
      continue; // Executed via a natural call in the meantime.
    ++Stats.NumForcedExecutions;
    Completion C = I.callFunctionForced(Fn);
    if (C.isAbort())
      ++Stats.NumAborts;
  }

  Stats.Interp = I.stats();
  Loaded = std::move(Collector.Loaded);

  // NumFunctionsTotal counts definitions present before eval-time parsing;
  // recompute against the final context to stay an upper bound.
  Stats.NumFunctionsVisited = 0;
  for (const FunctionDef *Def : Collector.Visited)
    if (!Def->isModule() && !Def->isInEval())
      ++Stats.NumFunctionsVisited;

  return Hints;
}
