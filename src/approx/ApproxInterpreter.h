//===- ApproxInterpreter.h - The approximate interpretation engine -*- C++ -*-===//
///
/// \file
/// The paper's primary contribution (Section 3): a worklist algorithm that
/// force-executes every module and every discovered function definition at
/// most once, collecting hints about dynamic property accesses.
///
/// Worklist items are modules and function *values* (closures); Visited is a
/// set of function *definitions*, so each definition is executed at most
/// once even when many closures exist for it. Unknown parameters, `this`,
/// and `arguments` are bound to the proxy `p*`; budgets bound stack depth
/// and total loop iterations per execution.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_APPROX_APPROXINTERPRETER_H
#define JSAI_APPROX_APPROXINTERPRETER_H

#include "approx/HintSet.h"
#include "interp/InterpStats.h"
#include "interp/Interpreter.h"
#include "support/Cancellation.h"

#include <deque>
#include <set>

namespace jsai {

/// Tunables for the pre-analysis.
struct ApproxOptions {
  /// Budgets forwarded to the interpreter (Section 3's abort thresholds).
  size_t MaxCallDepth = 96;
  uint64_t MaxLoopIterations = 50000;
  uint64_t MaxSteps = 20000000;
  /// Collect module-load hints for dynamically computed require specs.
  bool CollectModuleHints = true;
  /// Forwarded to InterpOptions; off only for ablation measurements.
  bool EnableInlineCaches = true;
  /// Execution engine (tree walker or bytecode VM); forwarded to
  /// InterpOptions. Both engines produce identical hints and stats — the
  /// walker remains as the differential oracle for the VM.
  InterpEngineKind Engine = defaultInterpEngineKind();
  /// Run the bytecode optimizer (superinstruction fusion + quickening) on
  /// compiled chunks; no effect under the Ast engine. Deliberately absent
  /// from config fingerprints: results are identical either way.
  bool VmOptimize = defaultVmOptEnabled();
  /// Count per-opcode VM dispatches into the loader's chunk cache
  /// (bench/ablation only; never enabled by default reports).
  bool CountVmOpcodes = false;
  /// Optional deadline token (armed by the caller). Polled at the
  /// interpreter's budget checkpoints and between worklist items; on expiry
  /// the worklist is abandoned and run() returns the hints collected so far.
  CancellationToken *Cancel = nullptr;
};

/// Outcome statistics (reported in the evaluation: hint counts, fraction of
/// functions visited, abort counts).
struct ApproxStats {
  size_t NumFunctionsTotal = 0;   ///< Program function definitions (no
                                  ///< modules, no eval code).
  size_t NumFunctionsVisited = 0; ///< Definitions executed at least once.
  size_t NumModulesLoaded = 0;
  size_t NumForcedExecutions = 0; ///< Worklist items force-executed.
  size_t NumAborts = 0;           ///< Executions stopped by a budget.

  /// Runtime-layer counters (shape transitions, inline-cache hits/misses)
  /// accumulated over the whole forced-execution run.
  InterpStats Interp;

  double visitedFraction() const {
    return NumFunctionsTotal == 0
               ? 0.0
               : double(NumFunctionsVisited) / double(NumFunctionsTotal);
  }

  friend bool operator==(const ApproxStats &, const ApproxStats &) = default;
};

/// Runs approximate interpretation over a parsed project and produces the
/// hints consumed by the extended static analysis.
class ApproxInterpreter {
public:
  explicit ApproxInterpreter(ModuleLoader &Loader,
                             ApproxOptions Opts = ApproxOptions())
      : Loader(Loader), Opts(Opts) {}

  /// Executes the worklist algorithm seeded with \p RootModules (typically
  /// every module of the project, main module first). \returns the hints.
  HintSet run(const std::vector<std::string> &RootModules);

  const ApproxStats &stats() const { return Stats; }

  /// Module paths the last run() actually loaded (roots plus everything
  /// pulled in via require, including dynamically computed specs the static
  /// import scan cannot see). The module-granular cache publishes a
  /// component's slices only when this stayed inside the component.
  const std::set<std::string> &loadedModules() const { return Loaded; }

private:
  ModuleLoader &Loader;
  ApproxOptions Opts;
  ApproxStats Stats;
  std::set<std::string> Loaded;
};

} // namespace jsai

#endif // JSAI_APPROX_APPROXINTERPRETER_H
