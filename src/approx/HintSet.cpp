//===- HintSet.cpp --------------------------------------------------------===//

#include "approx/HintSet.h"

#include <sstream>

using namespace jsai;

void HintSet::addReadHint(SourceLoc ReadLoc, AllocRef Result) {
  ReadHints[ReadLoc].insert(Result);
}

void HintSet::addWriteHint(AllocRef Base, std::string Prop, AllocRef Val) {
  WriteHints.insert({Base, std::move(Prop), Val});
}

void HintSet::addModuleHint(SourceLoc RequireLoc, std::string ModulePath) {
  ModuleHints[RequireLoc].insert(std::move(ModulePath));
}

void HintSet::addEvalHint(SourceLoc CallLoc, std::string Code) {
  if (!EvalHintIndex.insert({CallLoc.key(), Code}).second)
    return;
  EvalHints.emplace_back(CallLoc, std::move(Code));
}

void HintSet::addReadName(SourceLoc ReadLoc, std::string Name) {
  ReadNames[ReadLoc].insert(std::move(Name));
}

void HintSet::addWriteName(SourceLoc WriteLoc, std::string Name) {
  WriteNames[WriteLoc].insert(std::move(Name));
}

void HintSet::addProxyReadName(SourceLoc ReadLoc, std::string Name) {
  ProxyReadNames[ReadLoc].insert(std::move(Name));
}

size_t HintSet::size() const {
  size_t Total = WriteHints.size();
  for (const auto &[Loc, Refs] : ReadHints)
    Total += Refs.size();
  return Total;
}

static std::string formatRef(const FileTable &Files, const AllocRef &Ref) {
  std::string Out = Files.format(Ref.Loc);
  if (Ref.IsPrototype)
    Out += "#prototype";
  return Out;
}

std::string HintSet::toText(const FileTable &Files) const {
  std::string Out;
  for (const auto &[Loc, Refs] : ReadHints)
    for (const AllocRef &Ref : Refs)
      Out += "read  " + Files.format(Loc) + " <- " + formatRef(Files, Ref) +
             "\n";
  for (const WriteHint &W : WriteHints)
    Out += "write " + formatRef(Files, W.Base) + " ." + W.Prop + " = " +
           formatRef(Files, W.Val) + "\n";
  for (const auto &[Loc, Paths] : ModuleHints)
    for (const std::string &Path : Paths)
      Out += "module " + Files.format(Loc) + " -> " + Path + "\n";
  for (const auto &[Loc, Names] : ProxyReadNames)
    for (const std::string &Name : Names)
      Out += "proxy-read " + Files.format(Loc) + " ." + Name + "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Portable serialization
//===----------------------------------------------------------------------===//

namespace {

/// Escapes spaces, '%', and newlines so arbitrary property names, module
/// paths, and code strings survive the line/space-delimited format.
std::string escapeField(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case ' ':
      Out += "%20";
      break;
    case '%':
      Out += "%25";
      break;
    case '\n':
      Out += "%0A";
      break;
    case '\t':
      Out += "%09";
      break;
    default:
      Out += C;
      break;
    }
  }
  return Out;
}

/// \returns true when \p C is a hex digit, storing its value in \p V.
bool hexDigit(char C, unsigned &V) {
  if (C >= '0' && C <= '9') {
    V = unsigned(C - '0');
    return true;
  }
  if (C >= 'a' && C <= 'f') {
    V = unsigned(C - 'a') + 10;
    return true;
  }
  if (C >= 'A' && C <= 'F') {
    V = unsigned(C - 'A') + 10;
    return true;
  }
  return false;
}

std::string unescapeField(const std::string &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    unsigned Hi, Lo;
    if (S[I] == '%' && I + 2 < S.size() && hexDigit(S[I + 1], Hi) &&
        hexDigit(S[I + 2], Lo)) {
      Out += char(Hi * 16 + Lo);
      I += 2;
      continue;
    }
    Out += S[I];
  }
  return Out;
}

/// Strict unsigned parse; \returns false on any non-digit or empty input.
bool parseUint(const std::string &S, uint32_t &Out) {
  if (S.empty() || S.size() > 9)
    return false;
  uint32_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + uint32_t(C - '0');
  }
  Out = V;
  return true;
}

/// Loc as "path|line|col" (paths may contain ':', so '|' delimits).
std::string encodeLoc(const FileTable &Files, SourceLoc Loc) {
  return escapeField(Files.name(Loc.File)) + "|" + std::to_string(Loc.Line) +
         "|" + std::to_string(Loc.Col);
}

/// \returns an invalid loc when the path is unknown or the input is
/// malformed (deserialization must never throw).
SourceLoc decodeLoc(const FileTable &Files, const std::string &S) {
  size_t P2 = S.rfind('|');
  if (P2 == std::string::npos || P2 == 0)
    return SourceLoc::invalid();
  size_t P1 = S.rfind('|', P2 - 1);
  if (P1 == std::string::npos)
    return SourceLoc::invalid();
  FileId File = Files.lookup(unescapeField(S.substr(0, P1)));
  if (File == InvalidFileId)
    return SourceLoc::invalid();
  uint32_t Line, Col;
  if (!parseUint(S.substr(P1 + 1, P2 - P1 - 1), Line) ||
      !parseUint(S.substr(P2 + 1), Col))
    return SourceLoc::invalid();
  return SourceLoc(File, Line, Col);
}

std::string encodeRef(const FileTable &Files, const AllocRef &Ref) {
  return encodeLoc(Files, Ref.Loc) + (Ref.IsPrototype ? "|P" : "|O");
}

AllocRef decodeRef(const FileTable &Files, const std::string &S) {
  size_t Sep = S.rfind('|');
  if (Sep == std::string::npos)
    return AllocRef();
  AllocRef Ref;
  Ref.Loc = decodeLoc(Files, S.substr(0, Sep));
  Ref.IsPrototype = S.substr(Sep + 1) == "P";
  return Ref;
}

} // namespace

std::string HintSet::serialize(const FileTable &Files) const {
  std::string Out = "jsai-hints v1\n";
  for (const auto &[Loc, Refs] : ReadHints)
    for (const AllocRef &Ref : Refs)
      Out += "R " + encodeLoc(Files, Loc) + " " + encodeRef(Files, Ref) + "\n";
  for (const WriteHint &W : WriteHints)
    Out += "W " + encodeRef(Files, W.Base) + " " + escapeField(W.Prop) + " " +
           encodeRef(Files, W.Val) + "\n";
  for (const auto &[Loc, Paths] : ModuleHints)
    for (const std::string &Path : Paths)
      Out += "M " + encodeLoc(Files, Loc) + " " + escapeField(Path) + "\n";
  for (const auto &[Loc, Names] : ReadNames)
    for (const std::string &Name : Names)
      Out += "RN " + encodeLoc(Files, Loc) + " " + escapeField(Name) + "\n";
  for (const auto &[Loc, Names] : WriteNames)
    for (const std::string &Name : Names)
      Out += "WN " + encodeLoc(Files, Loc) + " " + escapeField(Name) + "\n";
  for (const auto &[Loc, Names] : ProxyReadNames)
    for (const std::string &Name : Names)
      Out += "PN " + encodeLoc(Files, Loc) + " " + escapeField(Name) + "\n";
  for (const auto &[Loc, Code] : EvalHints)
    Out += "E " + encodeLoc(Files, Loc) + " " + escapeField(Code) + "\n";
  return Out;
}

HintSet HintSet::deserialize(const std::string &Text, const FileTable &Files) {
  HintSet Out;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Fields(Line);
    std::string Kind, A, B, C;
    Fields >> Kind >> A >> B >> C;
    if (Kind == "R") {
      SourceLoc Loc = decodeLoc(Files, A);
      AllocRef Ref = decodeRef(Files, B);
      if (Loc.isValid() && Ref.isValid())
        Out.addReadHint(Loc, Ref);
    } else if (Kind == "W") {
      AllocRef Base = decodeRef(Files, A);
      AllocRef Val = decodeRef(Files, C);
      if (Base.isValid() && Val.isValid())
        Out.addWriteHint(Base, unescapeField(B), Val);
    } else if (Kind == "M") {
      SourceLoc Loc = decodeLoc(Files, A);
      if (Loc.isValid())
        Out.addModuleHint(Loc, unescapeField(B));
    } else if (Kind == "RN" || Kind == "WN" || Kind == "PN") {
      SourceLoc Loc = decodeLoc(Files, A);
      if (!Loc.isValid())
        continue;
      if (Kind == "RN")
        Out.addReadName(Loc, unescapeField(B));
      else if (Kind == "WN")
        Out.addWriteName(Loc, unescapeField(B));
      else
        Out.addProxyReadName(Loc, unescapeField(B));
    } else if (Kind == "E") {
      SourceLoc Loc = decodeLoc(Files, A);
      if (Loc.isValid())
        Out.addEvalHint(Loc, unescapeField(B));
    }
    // Unknown kinds (and the header) are skipped for forward compatibility.
  }
  return Out;
}

void HintSet::merge(const HintSet &Other) {
  for (const auto &[Loc, Refs] : Other.ReadHints)
    ReadHints[Loc].insert(Refs.begin(), Refs.end());
  WriteHints.insert(Other.WriteHints.begin(), Other.WriteHints.end());
  for (const auto &[Loc, Paths] : Other.ModuleHints)
    ModuleHints[Loc].insert(Paths.begin(), Paths.end());
  for (const auto &[Loc, Names] : Other.ReadNames)
    ReadNames[Loc].insert(Names.begin(), Names.end());
  for (const auto &[Loc, Names] : Other.WriteNames)
    WriteNames[Loc].insert(Names.begin(), Names.end());
  for (const auto &[Loc, Names] : Other.ProxyReadNames)
    ProxyReadNames[Loc].insert(Names.begin(), Names.end());
  for (const auto &Hint : Other.EvalHints)
    addEvalHint(Hint.first, Hint.second);
}
