//===- Optimizer.cpp - bytecode peephole optimizer ------------------------===//

#include "vm/Optimizer.h"

#include "ast/Ast.h"

#include <cassert>

using namespace jsai;

namespace {

/// Applies \p F to every jump-target operand of \p I. Targets are absolute
/// instruction indices; callers skip VmNoTarget themselves.
template <typename Fn> void forEachTarget(VmInsn &I, Fn F) {
  switch (I.Op) {
  case VmOp::Jump:
  case VmOp::JumpIfFalsePop:
  case VmOp::JumpIfTruePop:
  case VmOp::OrOrShortcut:
  case VmOp::CaseCompare:
    F(I.A);
    break;
  case VmOp::LogicalJump:
  case VmOp::ForInInit:
  case VmOp::ForInNext:
  case VmOp::CmpBranchFalse:
    F(I.B);
    break;
  case VmOp::TryEnter:
    F(I.A);
    F(I.B);
    break;
  case VmOp::ConstCmpBranchFalse:
    F(I.C);
    break;
  default:
    break;
  }
}

/// Comparison ops with a number fast path AND a boolean result; only these
/// fuse into compare+branch superinstructions (the branch consumes the
/// boolean without materializing it).
bool isStrictCmp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::EqStrict:
  case BinaryOp::NeStrict:
    return true;
  default:
    return false;
  }
}

} // namespace

size_t VmOptimizer::optimize(VmChunk &Chunk) {
  std::vector<VmInsn> &Code = Chunk.Code;
  const size_t N = Code.size();

  // Leader set: every jump target. A fusion must not swallow a leader as a
  // non-first member, or a jump would land mid-superinstruction.
  std::vector<bool> Leader(N + 1, false);
  for (VmInsn &I : Code)
    forEachTarget(I, [&](uint32_t T) {
      if (T != VmNoTarget) {
        assert(T <= N && "jump target out of range");
        Leader[T] = true;
      }
    });

  // Greedy left-to-right fusion. NewIndex maps every old instruction index
  // to the (first instruction of the) group that replaced it; jump targets
  // are always leaders, and leaders are always first in their group, so
  // remapping a target to its group start preserves control flow exactly.
  std::vector<VmInsn> Out;
  Out.reserve(N);
  std::vector<uint32_t> NewIndex(N + 1, 0);
  size_t Fused = 0;

  auto fusable = [&](size_t J) { return J < N && !Leader[J]; };

  size_t Idx = 0;
  while (Idx < N) {
    const VmInsn &A = Code[Idx];
    VmInsn F{};
    size_t K = 1; // Instructions consumed; 1 == no fusion.

    switch (A.Op) {
    case VmOp::Step: {
      // Runs of bare Step charges (nested expression entries) collapse to
      // one StepN charging the whole run at once.
      size_t Run = 1;
      while (fusable(Idx + Run) && Code[Idx + Run].Op == VmOp::Step)
        ++Run;
      if (Run >= 2) {
        F = VmInsn{VmOp::StepN, uint32_t(Run)};
        K = Run;
      }
      break;
    }
    case VmOp::Const:
      if (fusable(Idx + 1)) {
        const VmInsn &B = Code[Idx + 1];
        if (B.Op == VmOp::BinaryValue) {
          if (isStrictCmp(BinaryOp(B.A)) && fusable(Idx + 2) &&
              Code[Idx + 2].Op == VmOp::JumpIfFalsePop) {
            // `x < CONST` guarding a loop/if: three ops, one dispatch.
            F = VmInsn{VmOp::ConstCmpBranchFalse, A.A, B.A, Code[Idx + 2].A};
            K = 3;
          } else {
            F = VmInsn{VmOp::ConstBinary, A.A, B.A};
            K = 2;
          }
        } else if (B.Op == VmOp::ApplyArith) {
          F = VmInsn{VmOp::ConstArith, A.A, B.A};
          K = 2;
        }
      }
      break;
    case VmOp::LoadIdent:
      if (fusable(Idx + 1)) {
        const VmInsn &B = Code[Idx + 1];
        switch (B.Op) {
        case VmOp::BinaryValue:
          F = VmInsn{VmOp::IdentBinary, A.A, A.B, B.A};
          K = 2;
          break;
        case VmOp::ApplyArith:
          F = VmInsn{VmOp::IdentArith, A.A, A.B, B.A};
          K = 2;
          break;
        case VmOp::GetMember:
          F = VmInsn{VmOp::IdentGetMember, A.A, A.B, B.A};
          K = 2;
          break;
        case VmOp::ResolveMethodStatic:
          F = VmInsn{VmOp::IdentMethod, A.A, A.B, B.A};
          K = 2;
          break;
        default:
          break;
        }
      }
      break;
    case VmOp::BinaryValue:
      if (isStrictCmp(BinaryOp(A.A)) && fusable(Idx + 1) &&
          Code[Idx + 1].Op == VmOp::JumpIfFalsePop) {
        F = VmInsn{VmOp::CmpBranchFalse, A.A, Code[Idx + 1].A};
        K = 2;
      }
      break;
    case VmOp::StoreIdent:
      // The compiler already emits StoreIdentPop where it statically knows
      // the value is dead; this catches the assignment-as-statement shape
      // (compileAssign leaves the value, ExprStmt pops it).
      if (fusable(Idx + 1) && Code[Idx + 1].Op == VmOp::Pop) {
        F = VmInsn{VmOp::StoreIdentPop, A.A, A.B};
        K = 2;
      }
      break;
    default:
      break;
    }

    for (size_t J = 0; J != K; ++J)
      NewIndex[Idx + J] = uint32_t(Out.size());
    Out.push_back(K == 1 ? A : F);
    Fused += K - 1;
    Idx += K;
  }
  NewIndex[N] = uint32_t(Out.size());

  // Install profiling variants on the remaining generic forms. Only
  // optimized chunks ever contain Prof opcodes, so --vm-opt=off pays
  // nothing for the quickening machinery. GetMemberForCompound stays
  // generic: its sites are compound-assign reads, rarely hot and about to
  // be written through anyway.
  for (VmInsn &I : Out) {
    switch (I.Op) {
    case VmOp::BinaryValue:
      I.Op = VmOp::BinaryValueProf;
      I.C = 0;
      break;
    case VmOp::ApplyArith:
      I.Op = VmOp::ApplyArithProf;
      I.C = 0;
      break;
    case VmOp::GetMember:
      I.Op = VmOp::GetMemberProf;
      I.C = 0;
      break;
    default:
      break;
    }
  }

  // Remap every jump operand (including the ones inside new fused
  // instructions, which still hold old indices) through the index map.
  for (VmInsn &I : Out)
    forEachTarget(I, [&](uint32_t &T) {
      if (T != VmNoTarget)
        T = NewIndex[T];
    });

  Code = std::move(Out);
  Chunk.Optimized = true;
  return Fused;
}

const char *jsai::vmOpName(VmOp Op) {
  switch (Op) {
#define VM_OP_NAME(N)                                                          \
  case VmOp::N:                                                                \
    return #N;
    VM_OP_NAME(Step)
    VM_OP_NAME(LoopBudget)
    VM_OP_NAME(Const)
    VM_OP_NAME(LoadIdent)
    VM_OP_NAME(LoadThis)
    VM_OP_NAME(Closure)
    VM_OP_NAME(TypeofIdent)
    VM_OP_NAME(UpdateIdent)
    VM_OP_NAME(PushUndef)
    VM_OP_NAME(LoadIdentNoThrow)
    VM_OP_NAME(Pop)
    VM_OP_NAME(Dup)
    VM_OP_NAME(Dup2)
    VM_OP_NAME(Jump)
    VM_OP_NAME(JumpIfFalsePop)
    VM_OP_NAME(JumpIfTruePop)
    VM_OP_NAME(LogicalJump)
    VM_OP_NAME(OrOrShortcut)
    VM_OP_NAME(CaseCompare)
    VM_OP_NAME(StoreIdent)
    VM_OP_NAME(StoreIdentPop)
    VM_OP_NAME(UnaryValue)
    VM_OP_NAME(TypeofValue)
    VM_OP_NAME(BinaryValue)
    VM_OP_NAME(ApplyArith)
    VM_OP_NAME(GetMember)
    VM_OP_NAME(GetMemberComputed)
    VM_OP_NAME(GetMemberForCompound)
    VM_OP_NAME(GetMemberComputedForCompound)
    VM_OP_NAME(SetMember)
    VM_OP_NAME(SetMemberComputed)
    VM_OP_NAME(UpdateMember)
    VM_OP_NAME(UpdateMemberComputed)
    VM_OP_NAME(DeleteMember)
    VM_OP_NAME(DeleteMemberComputed)
    VM_OP_NAME(ResolveMethodStatic)
    VM_OP_NAME(ResolveMethodComputed)
    VM_OP_NAME(Call)
    VM_OP_NAME(CallMethod)
    VM_OP_NAME(New)
    VM_OP_NAME(DirectEval)
    VM_OP_NAME(NewObjectLit)
    VM_OP_NAME(SetOwnProp)
    VM_OP_NAME(SetAccessorProp)
    VM_OP_NAME(SetComputedProp)
    VM_OP_NAME(MakeArray)
    VM_OP_NAME(ForInInit)
    VM_OP_NAME(ForInNext)
    VM_OP_NAME(ForInBindVar)
    VM_OP_NAME(ForInBindMember)
    VM_OP_NAME(ForInEnd)
    VM_OP_NAME(TryEnter)
    VM_OP_NAME(TryExit)
    VM_OP_NAME(CatchBind)
    VM_OP_NAME(Throw)
    VM_OP_NAME(Rethrow)
    VM_OP_NAME(StashRet)
    VM_OP_NAME(ReturnStashed)
    VM_OP_NAME(ReturnValue)
    VM_OP_NAME(ReturnNormal)
    VM_OP_NAME(ReturnBrk)
    VM_OP_NAME(ReturnCont)
    VM_OP_NAME(StepN)
    VM_OP_NAME(ConstBinary)
    VM_OP_NAME(IdentBinary)
    VM_OP_NAME(ConstArith)
    VM_OP_NAME(IdentArith)
    VM_OP_NAME(CmpBranchFalse)
    VM_OP_NAME(ConstCmpBranchFalse)
    VM_OP_NAME(IdentGetMember)
    VM_OP_NAME(IdentMethod)
    VM_OP_NAME(BinaryValueProf)
    VM_OP_NAME(ApplyArithProf)
    VM_OP_NAME(GetMemberProf)
    VM_OP_NAME(QNumAdd)
    VM_OP_NAME(QNumSub)
    VM_OP_NAME(QNumMul)
    VM_OP_NAME(QNumDiv)
    VM_OP_NAME(QNumMod)
    VM_OP_NAME(QNumLt)
    VM_OP_NAME(QNumLe)
    VM_OP_NAME(QNumGt)
    VM_OP_NAME(QNumGe)
    VM_OP_NAME(QNumEq)
    VM_OP_NAME(QNumNe)
    VM_OP_NAME(QArithAdd)
    VM_OP_NAME(QArithSub)
    VM_OP_NAME(QArithMul)
    VM_OP_NAME(QArithDiv)
    VM_OP_NAME(QGetMemberMono)
#undef VM_OP_NAME
  }
  return "?";
}
