//===- EngineKind.cpp -----------------------------------------------------===//

#include "vm/EngineKind.h"

#include <cstdlib>
#include <cstring>

using namespace jsai;

namespace {

InterpEngineKind &defaultKindStorage() {
  static InterpEngineKind Kind = [] {
    InterpEngineKind Parsed;
    if (const char *Env = std::getenv("JSAI_INTERP"))
      if (parseInterpEngineKind(Env, Parsed))
        return Parsed;
    return InterpEngineKind::Ast;
  }();
  return Kind;
}

} // namespace

InterpEngineKind jsai::defaultInterpEngineKind() { return defaultKindStorage(); }

void jsai::setDefaultInterpEngineKind(InterpEngineKind K) {
  defaultKindStorage() = K;
}

const char *jsai::interpEngineKindName(InterpEngineKind K) {
  return K == InterpEngineKind::Vm ? "vm" : "ast";
}

bool jsai::parseInterpEngineKind(const char *Name, InterpEngineKind &Out) {
  if (std::strcmp(Name, "vm") == 0) {
    Out = InterpEngineKind::Vm;
    return true;
  }
  if (std::strcmp(Name, "ast") == 0) {
    Out = InterpEngineKind::Ast;
    return true;
  }
  return false;
}
