//===- EngineKind.cpp -----------------------------------------------------===//

#include "vm/EngineKind.h"

#include <cstdlib>
#include <cstring>

using namespace jsai;

namespace {

InterpEngineKind &defaultKindStorage() {
  static InterpEngineKind Kind = [] {
    InterpEngineKind Parsed;
    if (const char *Env = std::getenv("JSAI_INTERP"))
      if (parseInterpEngineKind(Env, Parsed))
        return Parsed;
    return InterpEngineKind::Ast;
  }();
  return Kind;
}

bool &defaultVmOptStorage() {
  static bool On = [] {
    bool Parsed;
    if (const char *Env = std::getenv("JSAI_VM_OPT"))
      if (parseVmOptMode(Env, Parsed))
        return Parsed;
    return true;
  }();
  return On;
}

} // namespace

InterpEngineKind jsai::defaultInterpEngineKind() { return defaultKindStorage(); }

void jsai::setDefaultInterpEngineKind(InterpEngineKind K) {
  defaultKindStorage() = K;
}

const char *jsai::interpEngineKindName(InterpEngineKind K) {
  return K == InterpEngineKind::Vm ? "vm" : "ast";
}

bool jsai::parseInterpEngineKind(const char *Name, InterpEngineKind &Out) {
  if (std::strcmp(Name, "vm") == 0) {
    Out = InterpEngineKind::Vm;
    return true;
  }
  if (std::strcmp(Name, "ast") == 0) {
    Out = InterpEngineKind::Ast;
    return true;
  }
  return false;
}

bool jsai::defaultVmOptEnabled() { return defaultVmOptStorage(); }

void jsai::setDefaultVmOptEnabled(bool On) { defaultVmOptStorage() = On; }

const char *jsai::vmOptModeName(bool On) { return On ? "on" : "off"; }

bool jsai::parseVmOptMode(const char *Name, bool &Out) {
  if (std::strcmp(Name, "on") == 0) {
    Out = true;
    return true;
  }
  if (std::strcmp(Name, "off") == 0) {
    Out = false;
    return true;
  }
  return false;
}
