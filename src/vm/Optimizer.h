//===- Optimizer.h - bytecode peephole optimizer ----------------*- C++ -*-===//
///
/// \file
/// Post-compilation optimization of VmChunks, gated by --vm-opt=on|off /
/// JSAI_VM_OPT. Two static rewrites run here:
///
///  1. Peephole fusion of adjacent instruction pairs (and Step runs) into
///     superinstructions. A fused opcode charges exactly the steps its
///     members would have charged, in one lump, which is abort-equivalent
///     because no observable effect happens between the original charges.
///     Fusion never swallows a jump target: the pass computes the leader
///     set first and only fuses runs whose non-first members are not
///     leaders, then remaps every jump operand through the old->new index
///     map.
///
///  2. Installation of profiling variants (BinaryValueProf, ApplyArithProf,
///     GetMemberProf) in place of the remaining generic opcodes. These
///     behave exactly like their generic forms but count type feedback in
///     the C operand; the dispatch loop quickens them in place to
///     specialized forms at VmQuickenThreshold and deoptimizes back on any
///     guard miss (see VmInterpreter.cpp). Because the Prof forms exist
///     only in optimized chunks, --vm-opt=off pays zero overhead.
///
/// The unoptimized VM and the AST walker both remain differential oracles:
/// hints, observer events, InterpStats, console output, and abort points
/// are byte-identical across all three configurations.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_VM_OPTIMIZER_H
#define JSAI_VM_OPTIMIZER_H

#include "vm/Bytecode.h"

namespace jsai {

/// Per-site execution count at which a Prof opcode rewrites itself to its
/// type-specialized form. Small: approx forced execution runs most code
/// once, so only genuinely hot sites (loops, reused chunks) should pay the
/// rewrite.
inline constexpr uint32_t VmQuickenThreshold = 8;

class VmOptimizer {
public:
  /// Optimizes \p Chunk in place (fusion, then Prof installation) and marks
  /// it Optimized. \returns the number of instructions removed by fusion.
  size_t optimize(VmChunk &Chunk);
};

} // namespace jsai

#endif // JSAI_VM_OPTIMIZER_H
