//===- VmInterpreter.cpp - bytecode dispatch loop -------------------------===//
//
// Interpreter::runChunk executes a VmChunk compiled by VmCompiler. The loop
// is a flat switch over VmOp with an explicit value stack; semantics are
// delegated to the same Interpreter members the tree walker uses
// (getProperty, setProperty, callValue, combineCompound, ...), so hints,
// observer events, inline-cache traffic, and budget accounting are shared
// rather than reimplemented. Throw/Abort unwinds through TryEnter frames;
// break/continue/return were lowered to jumps (with finalizers inlined) at
// compile time and never unwind.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "support/JsNumber.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"

#include <cassert>
#include <cmath>

using namespace jsai;

Interpreter::~Interpreter() = default;

Completion Interpreter::executeBody(FunctionDef *Def, Environment *Env) {
  if (Opts.Engine == InterpEngineKind::Vm)
    return runChunk(chunkFor(Def), Env, Def);
  return execBlockBody(Def->body()->body(), Env, Def);
}

VmChunk &Interpreter::chunkFor(FunctionDef *Def) {
  auto It = VmChunks.find(Def);
  if (It != VmChunks.end())
    return *It->second;
  // The loader's cache survives this interpreter, so repeated forced
  // executions, the dynamic call-graph run, and serve re-requests all reuse
  // one compiled (and optimized) chunk per FunctionDef. Optimized and plain
  // forms live in separate slots: an optimized chunk may quicken itself in
  // place and must never be observed by a --vm-opt=off interpreter.
  // Quickened state carried over from a previous interpreter is safe here:
  // every quickened opcode re-validates its guard against *this*
  // interpreter's caches and deoptimizes on mismatch.
  VmChunkCache &Cache = Loader.vmChunkCache();
  VmChunkCache::Entry &Entry = Cache.Entries[Def];
  std::unique_ptr<VmChunk> &Slot = Opts.VmOptimize ? Entry.Opt : Entry.Plain;
  if (Slot) {
    ++Cache.Stats.ChunkReuses;
  } else {
    Slot = VmCompiler(context()).compile(Def);
    if (Opts.VmOptimize)
      Cache.Stats.FusedInsns += VmOptimizer().optimize(*Slot);
    ++Cache.Stats.ChunkCompiles;
  }
  VmChunks.emplace(Def, Slot.get());
  return *Slot;
}

namespace {

/// One active `try` region. Depths snapshot the stacks at entry so an
/// unwind can discard partially built expression state.
struct VmFrame {
  uint32_t CatchIP, FinallyIP, StackDepth, ForInDepth;
};
struct VmForInState {
  std::vector<Value> Items;
  size_t Idx = 0;
};

/// References into runChunk's locals, bundled so the unwinder can live out
/// of line (it is pure stack surgery; it touches no Interpreter state).
struct VmUnwindState {
  std::vector<Value> &Stack;
  std::vector<VmFrame> &Frames;
  std::vector<VmForInState> &ForIns;
  Completion &Pending;
  Completion &Out;
  uint32_t &IP;
};

/// Routes an abrupt completion (Throw or Abort only) to the innermost
/// frame that handles it; returns false when the chunk is done (Out set).
/// Aborts never reach catch handlers, only finalizers. Noinline: unwinding
/// is the dispatch loop's coldest path and inlining it at every VM_ABRUPT
/// site would bloat the hot switch out of icache.
JSAI_NOINLINE bool vmUnwindSlow(VmUnwindState &U, Completion C) {
  while (!U.Frames.empty()) {
    VmFrame Fr = U.Frames.back();
    U.Frames.pop_back();
    uint32_t Target = C.isThrow() && Fr.CatchIP != VmNoTarget ? Fr.CatchIP
                                                              : Fr.FinallyIP;
    if (Target != VmNoTarget) {
      U.Stack.resize(Fr.StackDepth);
      U.ForIns.resize(Fr.ForInDepth);
      U.Pending = std::move(C);
      U.IP = Target;
      return true;
    }
  }
  U.Out = std::move(C);
  return false;
}

/// The BinaryValue number fast path, shared by the generic, fused, and
/// profiling opcodes so the arms cannot drift. Each arm computes exactly
/// what applyBinaryValueOp would: numbers are never proxies, Add with two
/// numbers is numeric, IEEE comparisons are false on NaN, and strictEquals
/// on numbers is `==`. \returns false (and leaves \p L untouched) for ops
/// without a numeric arm.
bool numBinaryFast(BinaryOp Op, double X, double Y, Value &L) {
  switch (Op) {
  case BinaryOp::Add:
    L = Value::number(X + Y);
    return true;
  case BinaryOp::Sub:
    L = Value::number(X - Y);
    return true;
  case BinaryOp::Mul:
    L = Value::number(X * Y);
    return true;
  case BinaryOp::Div:
    L = Value::number(X / Y);
    return true;
  case BinaryOp::Mod:
    L = Value::number(jsNumberMod(X, Y));
    return true;
  case BinaryOp::Lt:
    L = Value::boolean(X < Y);
    return true;
  case BinaryOp::Le:
    L = Value::boolean(X <= Y);
    return true;
  case BinaryOp::Gt:
    L = Value::boolean(X > Y);
    return true;
  case BinaryOp::Ge:
    L = Value::boolean(X >= Y);
    return true;
  case BinaryOp::EqStrict:
    L = Value::boolean(X == Y);
    return true;
  case BinaryOp::NeStrict:
    L = Value::boolean(X != Y);
    return true;
  default:
    return false;
  }
}

/// Compound-assign value-step fast path (see numBinaryFast): two numbers
/// reach applyArithOp's numeric arms (no proxy, no string/object).
bool numArithFast(AssignOp Op, double X, double Y, Value &Old) {
  switch (Op) {
  case AssignOp::Add:
    Old = Value::number(X + Y);
    return true;
  case AssignOp::Sub:
    Old = Value::number(X - Y);
    return true;
  case AssignOp::Mul:
    Old = Value::number(X * Y);
    return true;
  case AssignOp::Div:
    Old = Value::number(X / Y);
    return true;
  default:
    return false;
  }
}

/// Number comparison for the fused compare+branch forms; \p Op is one of
/// the six strict comparison ops the optimizer fuses.
bool numCompare(BinaryOp Op, double X, double Y) {
  switch (Op) {
  case BinaryOp::Lt:
    return X < Y;
  case BinaryOp::Le:
    return X <= Y;
  case BinaryOp::Gt:
    return X > Y;
  case BinaryOp::Ge:
    return X >= Y;
  case BinaryOp::EqStrict:
    return X == Y;
  default:
    return X != Y; // NeStrict.
  }
}

/// Quickened target for a Prof site whose operands were two numbers, or
/// the Prof op itself when the operator has no specialized form.
VmOp quickenedNumBinary(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return VmOp::QNumAdd;
  case BinaryOp::Sub:
    return VmOp::QNumSub;
  case BinaryOp::Mul:
    return VmOp::QNumMul;
  case BinaryOp::Div:
    return VmOp::QNumDiv;
  case BinaryOp::Mod:
    return VmOp::QNumMod;
  case BinaryOp::Lt:
    return VmOp::QNumLt;
  case BinaryOp::Le:
    return VmOp::QNumLe;
  case BinaryOp::Gt:
    return VmOp::QNumGt;
  case BinaryOp::Ge:
    return VmOp::QNumGe;
  case BinaryOp::EqStrict:
    return VmOp::QNumEq;
  case BinaryOp::NeStrict:
    return VmOp::QNumNe;
  default:
    return VmOp::BinaryValueProf;
  }
}

VmOp quickenedNumArith(AssignOp Op) {
  switch (Op) {
  case AssignOp::Add:
    return VmOp::QArithAdd;
  case AssignOp::Sub:
    return VmOp::QArithSub;
  case AssignOp::Mul:
    return VmOp::QArithMul;
  case AssignOp::Div:
    return VmOp::QArithDiv;
  default:
    return VmOp::ApplyArithProf;
  }
}

} // namespace

Completion Interpreter::runChunk(VmChunk &Chunk, Environment *Env,
                                 FunctionDef *F) {
  std::vector<Value> Stack;
  std::vector<VmFrame> Frames;
  std::vector<VmForInState> ForIns;
  Value RetSlot;
  Completion Pending; // Set while unwinding toward CatchBind/Rethrow.
  Completion Out;
  VmInsn *Code = Chunk.Code.data(); // Mutable: quickening rewrites in place.
  uint32_t IP = 0;
  Stack.reserve(64);
  VmUnwindState Unwind{Stack, Frames, ForIns, Pending, Out, IP};
  // Per-opcode execution counters (bench ablations). One predictable
  // branch per dispatch when disabled; the array lives on the loader so
  // counts aggregate across every interpreter of a run.
  uint64_t *OpCounts =
      Opts.CountVmOpcodes ? Loader.vmChunkCache().ensureOpcodeCounts()
                          : nullptr;

  // Per-invocation binding-pointer cache, one entry per distinct symbol in
  // the chunk (see VmChunk). A hit skips the whole environment-chain walk;
  // misses are never cached because the binding may be created later (an
  // implicit global), and that creation happens in the outermost frame so
  // it can never shadow a pointer cached here.
  std::vector<Value *> Slots(Chunk.NumSlots, nullptr);
  auto slotGet = [&](uint32_t SlotId, Symbol Name) -> Value * {
    Value *&S = Slots[SlotId];
    if (!S)
      S = Env->lookup(Name);
    return S;
  };
  auto slotPut = [&](uint32_t SlotId, Symbol Name, Value V) {
    Value *&S = Slots[SlotId];
    if (S) {
      // Env->assign writes the nearest binding on the chain — exactly the
      // one lookup found — so writing through the cached pointer is the
      // same store assignVariable would perform.
      *S = std::move(V);
      return;
    }
    assignVariable(Name, V, Env);
    S = Env->lookup(Name);
  };

  auto pop = [&]() -> Value {
    Value V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  };

// Propagates an abrupt completion from a helper call; `break` afterwards
// re-enters the dispatch loop at the unwound IP.
#define VM_ABRUPT(C)                                                           \
  {                                                                            \
    if (!vmUnwindSlow(Unwind, C))                                              \
      return Out;                                                              \
    break;                                                                     \
  }
#define VM_CHECK(R)                                                            \
  if ((R).isAbrupt())                                                          \
  VM_ABRUPT(std::move(R))

  for (;;) {
    const VmInsn &I = Code[IP++];
    if (OpCounts)
      ++OpCounts[size_t(I.Op)];
    switch (I.Op) {
    case VmOp::Step:
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      break;
    case VmOp::LoopBudget:
      if (!loopBudget())
        VM_ABRUPT(Completion::abort());
      break;

    case VmOp::Const:
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      Stack.push_back(Chunk.Consts[I.A]);
      break;
    case VmOp::LoadIdent: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *Id = cast<Ident>(Chunk.Nodes[I.A]);
      if (Value *Slot = slotGet(I.B, Id->name())) {
        Stack.push_back(*Slot);
        break;
      }
      if (Opts.ApproxMode) {
        Stack.push_back(proxyValue()); // Unknown globals become p*.
        break;
      }
      Completion R = throwError("ReferenceError",
                                strings().str(Id->name()) +
                                    " is not defined at " +
                                    context().files().format(Id->loc()));
      VM_ABRUPT(std::move(R));
    }
    case VmOp::LoadThis: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      if (Value *Slot = slotGet(I.A, context().SymThis))
        Stack.push_back(*Slot);
      else
        Stack.push_back(Opts.ApproxMode ? proxyValue() : Value::undefined());
      break;
    }
    case VmOp::Closure: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *FE = cast<FunctionExpr>(Chunk.Nodes[I.A]);
      Stack.push_back(makeClosure(FE->def(), Env, FE->loc()));
      break;
    }
    case VmOp::TypeofIdent: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *Id = cast<Ident>(Chunk.Nodes[I.A]);
      if (Value *Slot = slotGet(I.B, Id->name()))
        Stack.push_back(Value::str(
            isProxyValue(*Slot) ? "function" : Slot->typeOf()));
      else
        Stack.push_back(
            Value::str(Opts.ApproxMode ? "function" : "undefined"));
      break;
    }
    case VmOp::UpdateIdent: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *U = cast<UpdateExpr>(Chunk.Nodes[I.A]);
      auto *Id = cast<Ident>(U->target());
      Value Old;
      if (Value *Slot = slotGet(I.B, Id->name())) {
        Old = *Slot;
      } else if (Opts.ApproxMode) {
        Old = proxyValue();
      } else {
        Completion R = throwError("ReferenceError",
                                  strings().str(Id->name()) +
                                      " is not defined");
        VM_ABRUPT(std::move(R));
      }
      Value NewV = bumpValue(U->isIncrement(), Old);
      slotPut(I.B, Id->name(), NewV);
      if (U->isPrefix())
        Stack.push_back(std::move(NewV));
      else
        Stack.push_back(isProxyValue(Old)
                            ? Old
                            : Value::number(toNumberValue(Old)));
      break;
    }

    case VmOp::PushUndef:
      Stack.push_back(Value::undefined());
      break;
    case VmOp::LoadIdentNoThrow: {
      // Compound-assign old value: a missing binding reads as p* / undefined
      // (matching the walker's no-throw lookup, which never throws here).
      if (Value *Slot = slotGet(I.B, Symbol(I.A)))
        Stack.push_back(*Slot);
      else
        Stack.push_back(Opts.ApproxMode ? proxyValue() : Value::undefined());
      break;
    }

    case VmOp::Pop:
      Stack.pop_back();
      break;
    case VmOp::Dup:
      Stack.push_back(Stack.back());
      break;
    case VmOp::Dup2: {
      Value A = Stack[Stack.size() - 2];
      Value B = Stack[Stack.size() - 1];
      Stack.push_back(std::move(A));
      Stack.push_back(std::move(B));
      break;
    }

    case VmOp::Jump:
      IP = I.A;
      break;
    case VmOp::JumpIfFalsePop: {
      bool B = Stack.back().toBoolean();
      Stack.pop_back();
      if (!B)
        IP = I.A;
      break;
    }
    case VmOp::JumpIfTruePop: {
      bool B = Stack.back().toBoolean();
      Stack.pop_back();
      if (B)
        IP = I.A;
      break;
    }
    case VmOp::LogicalJump: {
      const Value &L = Stack.back();
      bool Short = false;
      switch (LogicalOp(I.A)) {
      case LogicalOp::And:
        Short = !L.toBoolean();
        break;
      case LogicalOp::Or:
        Short = L.toBoolean();
        break;
      case LogicalOp::Nullish:
        Short = !L.isNullish();
        break;
      }
      if (Short)
        IP = I.B; // Keep the lhs as the result.
      else
        Stack.pop_back();
      break;
    }
    case VmOp::OrOrShortcut: {
      if (Stack.back().toBoolean()) {
        // Truthy old value short-circuits `a ||= b`: drop the spare
        // base/index copies beneath it and keep it as the result.
        Stack.erase(Stack.end() - 1 - I.B, Stack.end() - 1);
        IP = I.A;
      } else {
        Stack.pop_back();
      }
      break;
    }
    case VmOp::CaseCompare: {
      bool Eq = Value::strictEquals(Stack[Stack.size() - 2], Stack.back());
      Stack.pop_back();
      if (Eq) {
        Stack.pop_back(); // Discriminant is consumed by the match.
        IP = I.A;
      }
      break;
    }

    case VmOp::StoreIdent:
      slotPut(I.B, Symbol(I.A), Stack.back());
      break;
    case VmOp::StoreIdentPop:
      slotPut(I.B, Symbol(I.A), pop());
      break;

    case VmOp::UnaryValue: {
      Value V = pop();
      Stack.push_back(applyUnaryValueOp(UnaryOp(I.A), V));
      break;
    }
    case VmOp::TypeofValue: {
      Value V = pop();
      Stack.push_back(
          Value::str(isProxyValue(V) ? "function" : V.typeOf()));
      break;
    }
    case VmOp::BinaryValue: {
      // Number×number fast path, in place on the stack (numBinaryFast).
      Value &L = Stack[Stack.size() - 2];
      const Value &R = Stack.back();
      if (L.isNumber() && R.isNumber() &&
          numBinaryFast(BinaryOp(I.A), L.asNumber(), R.asNumber(), L)) {
        Stack.pop_back();
        break;
      }
      Value Rv = pop();
      Value Lv = pop();
      Stack.push_back(applyBinaryValueOp(BinaryOp(I.A), Lv, Rv));
      break;
    }
    case VmOp::ApplyArith: {
      // Same fast path for the compound-assign value step (numArithFast).
      Value &Old = Stack[Stack.size() - 2];
      const Value &R = Stack.back();
      if (Old.isNumber() && R.isNumber() &&
          numArithFast(AssignOp(I.A), Old.asNumber(), R.asNumber(), Old)) {
        Stack.pop_back();
        break;
      }
      Value Rhs = pop();
      Value OldV = pop();
      Stack.push_back(combineCompound(AssignOp(I.A), OldV, Rhs));
      break;
    }

    case VmOp::GetMember:
    case VmOp::GetMemberForCompound: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Base = pop();
      Completion R = getProperty(Base, M->name(), M->loc(), M->id());
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::GetMemberComputed: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Index = pop();
      Value Base = pop();
      std::optional<Symbol> Key = propertyKeySym(Index);
      if (!Key) {
        Stack.push_back(proxyValue()); // Unknown property name.
        break;
      }
      if (Opts.ApproxMode && isProxyValue(Base)) {
        if (Obs)
          Obs->onProxyBaseRead(M->loc(), strings().str(*Key));
        Completion R = getProperty(Base, *Key, M->loc());
        VM_CHECK(R);
        Stack.push_back(std::move(R.V));
        break;
      }
      Completion R = getProperty(Base, *Key, M->loc());
      VM_CHECK(R);
      if (Obs)
        Obs->onDynamicRead(M->loc(), strings().str(*Key), R.V);
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::GetMemberComputedForCompound: {
      // Compound read side: no dynamic-read observation, no cache (the
      // walker's compound-member path reads with CacheId == NoCache), and
      // an unknown key yields p* to feed the combine step.
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Index = pop();
      Value Base = pop();
      std::optional<Symbol> Key = propertyKeySym(Index);
      if (!Key) {
        Stack.push_back(proxyValue());
        break;
      }
      Completion R = getProperty(Base, *Key, M->loc(), NoCache);
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::SetMember: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value V = pop();
      Value Base = pop();
      if (Opts.ApproxMode && V.isObject()) {
        // Static property write: infer the receiver for forced execution
        // (the paper's `this` map), wrapped to delegate unknowns to p*.
        Object *Written = V.asObject();
        if (Written->functionDef() && !Written->approxThis() &&
            Base.isObject() && !Base.asObject()->isProxy())
          Written->setApproxThis(makeReceiverProxy(Base.asObject()));
      }
      Completion W = setProperty(Base, M->name(), V, M->loc(), M->id());
      VM_CHECK(W);
      Stack.push_back(std::move(V));
      break;
    }
    case VmOp::SetMemberComputed: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value V = pop();
      Value Index = pop();
      Value Base = pop();
      std::optional<Symbol> Key = propertyKeySym(Index);
      if (!Key) {
        Stack.push_back(std::move(V)); // Unknown key: skip the write.
        break;
      }
      if (Obs && Base.isObject())
        Obs->onDynamicWrite(M->loc(), Base.asObject(), strings().str(*Key),
                            V);
      Completion W = setProperty(Base, *Key, V, M->loc(), NoCache);
      VM_CHECK(W);
      Stack.push_back(std::move(V));
      break;
    }
    case VmOp::UpdateMember: {
      auto *U = cast<UpdateExpr>(Chunk.Nodes[I.A]);
      auto *M = cast<MemberExpr>(U->target());
      Value Base = pop();
      Completion Old = getProperty(Base, M->name(), M->loc(), M->id());
      VM_CHECK(Old);
      Value NewV = bumpValue(U->isIncrement(), Old.V);
      Completion W = setProperty(Base, M->name(), NewV, M->loc(), M->id());
      VM_CHECK(W);
      if (U->isPrefix())
        Stack.push_back(std::move(NewV));
      else
        Stack.push_back(isProxyValue(Old.V)
                            ? Old.V
                            : Value::number(toNumberValue(Old.V)));
      break;
    }
    case VmOp::UpdateMemberComputed: {
      auto *U = cast<UpdateExpr>(Chunk.Nodes[I.A]);
      auto *M = cast<MemberExpr>(U->target());
      Value Index = pop();
      Value Base = pop();
      std::optional<Symbol> Key = propertyKeySym(Index);
      if (!Key) {
        Stack.push_back(proxyValue());
        break;
      }
      Completion Old = getProperty(Base, *Key, M->loc(), NoCache);
      VM_CHECK(Old);
      Value NewV = bumpValue(U->isIncrement(), Old.V);
      if (Obs && Base.isObject())
        Obs->onDynamicWrite(M->loc(), Base.asObject(), strings().str(*Key),
                            NewV);
      Completion W = setProperty(Base, *Key, NewV, M->loc(), NoCache);
      VM_CHECK(W);
      if (U->isPrefix())
        Stack.push_back(std::move(NewV));
      else
        Stack.push_back(isProxyValue(Old.V)
                            ? Old.V
                            : Value::number(toNumberValue(Old.V)));
      break;
    }
    case VmOp::DeleteMember: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Base = pop();
      Stack.push_back(deleteMemberOnValue(Base, M->name()));
      break;
    }
    case VmOp::DeleteMemberComputed: {
      Value Index = pop();
      Value Base = pop();
      Stack.push_back(deleteMemberOnValue(Base, propertyKeySym(Index)));
      break;
    }

    case VmOp::ResolveMethodStatic: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Base = pop();
      Completion R = getProperty(Base, M->name(), M->loc(), M->id());
      VM_CHECK(R);
      Stack.push_back(std::move(Base)); // `this` for the upcoming call.
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::ResolveMethodComputed: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Index = pop();
      Value Base = pop();
      std::optional<Symbol> Key = propertyKeySym(Index);
      if (!Key) {
        Stack.push_back(std::move(Base));
        Stack.push_back(proxyValue()); // Unknown method name: call p*.
        break;
      }
      Completion R = getProperty(Base, *Key, M->loc(), NoCache);
      VM_CHECK(R);
      if (Obs) {
        if (Opts.ApproxMode && isProxyValue(Base))
          Obs->onProxyBaseRead(M->loc(), strings().str(*Key));
        else
          Obs->onDynamicRead(M->loc(), strings().str(*Key), R.V);
      }
      Stack.push_back(std::move(Base));
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::Call:
    case VmOp::CallMethod: {
      auto *C = cast<CallExpr>(Chunk.Nodes[I.A]);
      std::vector<Value> Args(
          std::make_move_iterator(Stack.end() - I.B),
          std::make_move_iterator(Stack.end()));
      Stack.resize(Stack.size() - I.B);
      Value Callee = pop();
      Value ThisV =
          I.Op == VmOp::CallMethod ? pop() : Value::undefined();
      Completion R = callValue(Callee, ThisV, std::move(Args), C->loc());
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::New: {
      auto *N = cast<NewExpr>(Chunk.Nodes[I.A]);
      std::vector<Value> Args(
          std::make_move_iterator(Stack.end() - I.B),
          std::make_move_iterator(Stack.end()));
      Stack.resize(Stack.size() - I.B);
      Value Callee = pop();
      SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : N->loc();
      Completion R = construct(Callee, std::move(Args), Birth, N->loc());
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }
    case VmOp::DirectEval: {
      auto *C = cast<CallExpr>(Chunk.Nodes[I.A]);
      Value Arg = pop();
      if (isProxyValue(Arg)) {
        Stack.push_back(proxyValue());
        break;
      }
      if (!Arg.isString()) {
        // eval of a non-string returns it unchanged (no-arg calls push
        // undefined at compile time and land here too).
        Stack.push_back(std::move(Arg));
        break;
      }
      Completion R = runEval(Arg.asString(), Env, F, C->loc());
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }

    case VmOp::NewObjectLit: {
      auto *O = cast<ObjectLit>(Chunk.Nodes[I.A]);
      SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : O->loc();
      Object *Obj =
          TheHeap.newObject(ObjectClass::Plain, Birth, Protos.ObjectP);
      if (Obs)
        Obs->onObjectCreated(Obj);
      Stack.push_back(Value::object(Obj));
      break;
    }
    case VmOp::SetOwnProp: {
      auto *O = cast<ObjectLit>(Chunk.Nodes[I.A]);
      Value V = pop();
      Stack.back().asObject()->setOwn(O->properties()[I.B].Key, V);
      break;
    }
    case VmOp::SetAccessorProp: {
      auto *O = cast<ObjectLit>(Chunk.Nodes[I.A]);
      const ObjectProperty &P = O->properties()[I.B];
      Value V = pop();
      Object *Accessor =
          V.isObject() && V.asObject()->isCallable() ? V.asObject() : nullptr;
      Object *Obj = Stack.back().asObject();
      if (P.PKind == PropertyKind::Getter)
        Obj->setAccessor(P.Key, Accessor, nullptr);
      else
        Obj->setAccessor(P.Key, nullptr, Accessor);
      break;
    }
    case VmOp::SetComputedProp: {
      auto *O = cast<ObjectLit>(Chunk.Nodes[I.A]);
      const ObjectProperty &P = O->properties()[I.B];
      Value KeyV = pop();
      Value V = pop();
      std::optional<Symbol> Key = propertyKeySym(KeyV);
      if (!Key)
        break; // Unknown (proxy) key: skip the write.
      Object *Obj = Stack.back().asObject();
      if (Obs)
        Obs->onDynamicWrite(P.KeyExpr->loc(), Obj, strings().str(*Key), V);
      // The write's completion is discarded, as in the walker's object
      // literal evaluation (setter throws do not abort the literal).
      setProperty(Value::object(Obj), *Key, V, P.KeyExpr->loc());
      break;
    }
    case VmOp::MakeArray: {
      auto *A = cast<ArrayLit>(Chunk.Nodes[I.A]);
      std::vector<Value> Elements(
          std::make_move_iterator(Stack.end() - I.B),
          std::make_move_iterator(Stack.end()));
      Stack.resize(Stack.size() - I.B);
      SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : A->loc();
      Object *Arr = TheHeap.newArray(Birth, std::move(Elements));
      Arr->setProto(Protos.ArrayP);
      if (Obs)
        Obs->onObjectCreated(Arr);
      Stack.push_back(Value::object(Arr));
      break;
    }

    case VmOp::ForInInit: {
      auto *L = cast<ForInStmt>(Chunk.Nodes[I.A]);
      Value ObjV = pop();
      if (!ObjV.isObject() || ObjV.asObject()->isProxy()) {
        IP = I.B; // Zero iterations; no state was pushed.
        break;
      }
      ForIns.push_back({forInItems(L, ObjV.asObject()), 0});
      break;
    }
    case VmOp::ForInNext: {
      VmForInState &St = ForIns.back();
      if (St.Idx >= St.Items.size()) {
        IP = I.B; // Exhausted: jump to ForInEnd (no budget charge).
        break;
      }
      if (!loopBudget())
        VM_ABRUPT(Completion::abort());
      Stack.push_back(St.Items[St.Idx++]);
      break;
    }
    case VmOp::ForInBindVar:
      slotPut(I.B, Symbol(I.A), pop());
      break;
    case VmOp::ForInBindMember: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value Base = pop();
      Value Item = pop();
      if (!M->isComputed()) {
        Completion W =
            setProperty(Base, M->name(), Item, M->loc(), M->id());
        VM_CHECK(W);
      }
      break;
    }
    case VmOp::ForInEnd:
      ForIns.pop_back();
      break;

    case VmOp::TryEnter:
      Frames.push_back(
          {I.A, I.B, uint32_t(Stack.size()), uint32_t(ForIns.size())});
      break;
    case VmOp::TryExit:
      Frames.pop_back();
      break;
    case VmOp::CatchBind:
      if (Symbol(I.A) != InvalidSymbol)
        slotPut(I.B, Symbol(I.A), Pending.V);
      break;
    case VmOp::Throw: {
      Value V = pop();
      VM_ABRUPT(Completion::toss(std::move(V)));
    }
    case VmOp::Rethrow:
      VM_ABRUPT(std::move(Pending));

    case VmOp::StashRet:
      RetSlot = pop();
      break;
    case VmOp::ReturnStashed:
      return Completion::ret(std::move(RetSlot));
    case VmOp::ReturnValue:
      return Completion::ret(pop());
    case VmOp::ReturnNormal:
      return Completion::normal();
    case VmOp::ReturnBrk:
      return Completion::brk();
    case VmOp::ReturnCont:
      return Completion::cont();

    // -- Superinstructions (optimized chunks only) --------------------------
    case VmOp::StepN:
      // A fused Step run charges its whole sum at once; abort-equivalent
      // because nothing observable happened between the original charges
      // (see stepBudgetN).
      if (!stepBudgetN(I.A))
        VM_ABRUPT(Completion::abort());
      break;
    case VmOp::ConstBinary: {
      // Const (which charges the step) + BinaryValue, rhs never pushed.
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      const Value &R = Chunk.Consts[I.A];
      Value &L = Stack.back();
      if (L.isNumber() && R.isNumber() &&
          numBinaryFast(BinaryOp(I.B), L.asNumber(), R.asNumber(), L))
        break;
      Value Lv = pop();
      Stack.push_back(applyBinaryValueOp(BinaryOp(I.B), Lv, R));
      break;
    }
    case VmOp::IdentBinary: {
      // LoadIdent (charges the step) + BinaryValue, rhs loaded in place.
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *Id = cast<Ident>(Chunk.Nodes[I.A]);
      Value *Slot = slotGet(I.B, Id->name());
      if (!Slot && !Opts.ApproxMode) {
        Completion R = throwError("ReferenceError",
                                  strings().str(Id->name()) +
                                      " is not defined at " +
                                      context().files().format(Id->loc()));
        VM_ABRUPT(std::move(R));
      }
      Value &L = Stack.back();
      if (Slot) {
        if (L.isNumber() && Slot->isNumber() &&
            numBinaryFast(BinaryOp(I.C), L.asNumber(), Slot->asNumber(), L))
          break;
        Value Lv = pop();
        Stack.push_back(applyBinaryValueOp(BinaryOp(I.C), Lv, *Slot));
        break;
      }
      Value Rv = proxyValue(); // Unknown globals become p*.
      Value Lv = pop();
      Stack.push_back(applyBinaryValueOp(BinaryOp(I.C), Lv, Rv));
      break;
    }
    case VmOp::ConstArith: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      const Value &R = Chunk.Consts[I.A];
      Value &Old = Stack.back();
      if (Old.isNumber() && R.isNumber() &&
          numArithFast(AssignOp(I.B), Old.asNumber(), R.asNumber(), Old))
        break;
      Value OldV = pop();
      Stack.push_back(combineCompound(AssignOp(I.B), OldV, R));
      break;
    }
    case VmOp::IdentArith: {
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *Id = cast<Ident>(Chunk.Nodes[I.A]);
      Value *Slot = slotGet(I.B, Id->name());
      if (!Slot && !Opts.ApproxMode) {
        Completion R = throwError("ReferenceError",
                                  strings().str(Id->name()) +
                                      " is not defined at " +
                                      context().files().format(Id->loc()));
        VM_ABRUPT(std::move(R));
      }
      Value &Old = Stack.back();
      if (Slot) {
        if (Old.isNumber() && Slot->isNumber() &&
            numArithFast(AssignOp(I.C), Old.asNumber(), Slot->asNumber(),
                         Old))
          break;
        Value OldV = pop();
        Stack.push_back(combineCompound(AssignOp(I.C), OldV, *Slot));
        break;
      }
      Value OldV = pop();
      Stack.push_back(combineCompound(AssignOp(I.C), OldV, proxyValue()));
      break;
    }
    case VmOp::CmpBranchFalse: {
      // BinaryValue (strict comparison) + JumpIfFalsePop; the boolean is
      // branched on without being materialized. The generic fallback
      // computes exactly BinaryValue-then-toBoolean.
      const Value &L = Stack[Stack.size() - 2];
      const Value &R = Stack.back();
      bool Cond = L.isNumber() && R.isNumber()
                      ? numCompare(BinaryOp(I.A), L.asNumber(), R.asNumber())
                      : applyBinaryValueOp(BinaryOp(I.A), L, R).toBoolean();
      Stack.pop_back();
      Stack.pop_back();
      if (!Cond)
        IP = I.B;
      break;
    }
    case VmOp::ConstCmpBranchFalse: {
      // Const + BinaryValue + JumpIfFalsePop: `i < N` loop guards in one
      // dispatch. Charges Const's step.
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      const Value &R = Chunk.Consts[I.A];
      const Value &L = Stack.back();
      bool Cond = L.isNumber() && R.isNumber()
                      ? numCompare(BinaryOp(I.B), L.asNumber(), R.asNumber())
                      : applyBinaryValueOp(BinaryOp(I.B), L, R).toBoolean();
      Stack.pop_back();
      if (!Cond)
        IP = I.C;
      break;
    }
    case VmOp::IdentGetMember:
    case VmOp::IdentMethod: {
      // LoadIdent (charges the step) + GetMember / ResolveMethodStatic;
      // the base value skips the stack round trip.
      if (!stepBudget())
        VM_ABRUPT(Completion::abort());
      auto *Id = cast<Ident>(Chunk.Nodes[I.A]);
      Value Base;
      if (Value *Slot = slotGet(I.B, Id->name())) {
        Base = *Slot;
      } else if (Opts.ApproxMode) {
        Base = proxyValue();
      } else {
        Completion R = throwError("ReferenceError",
                                  strings().str(Id->name()) +
                                      " is not defined at " +
                                      context().files().format(Id->loc()));
        VM_ABRUPT(std::move(R));
      }
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.C]);
      Completion R = getProperty(Base, M->name(), M->loc(), M->id());
      VM_CHECK(R);
      if (I.Op == VmOp::IdentMethod)
        Stack.push_back(std::move(Base)); // `this` for the upcoming call.
      Stack.push_back(std::move(R.V));
      break;
    }

    // -- Profiling variants (optimized chunks only) -------------------------
    // Generic semantics plus a per-site counter in the C operand; at
    // VmQuickenThreshold the site rewrites itself to a specialized form.
    // The rewrite happens before this execution completes generically, so
    // the site's observable behavior never depends on the counter.
    case VmOp::BinaryValueProf: {
      Value &L = Stack[Stack.size() - 2];
      const Value &R = Stack.back();
      if (L.isNumber() && R.isNumber()) {
        VmInsn &Site = Code[IP - 1];
        if (++Site.C == VmQuickenThreshold) {
          VmOp Q = quickenedNumBinary(BinaryOp(Site.A));
          if (Q != VmOp::BinaryValueProf) {
            Site.Op = Q;
            ++Loader.vmChunkCache().Stats.QuickenedSites;
          }
        }
        if (numBinaryFast(BinaryOp(I.A), L.asNumber(), R.asNumber(), L)) {
          Stack.pop_back();
          break;
        }
      }
      Value Rv = pop();
      Value Lv = pop();
      Stack.push_back(applyBinaryValueOp(BinaryOp(I.A), Lv, Rv));
      break;
    }
    case VmOp::ApplyArithProf: {
      Value &Old = Stack[Stack.size() - 2];
      const Value &R = Stack.back();
      if (Old.isNumber() && R.isNumber()) {
        VmInsn &Site = Code[IP - 1];
        if (++Site.C == VmQuickenThreshold) {
          VmOp Q = quickenedNumArith(AssignOp(Site.A));
          if (Q != VmOp::ApplyArithProf) {
            Site.Op = Q;
            ++Loader.vmChunkCache().Stats.QuickenedSites;
          }
        }
        if (numArithFast(AssignOp(I.A), Old.asNumber(), R.asNumber(), Old)) {
          Stack.pop_back();
          break;
        }
      }
      Value Rhs = pop();
      Value OldV = pop();
      Stack.push_back(combineCompound(AssignOp(I.A), OldV, Rhs));
      break;
    }
    case VmOp::GetMemberProf: {
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      // Quicken only when inline caches are live: the monomorphic form IS
      // the IC hit path, and replicating its counters requires them.
      if (Opts.EnableInlineCaches && Stack.back().isObject()) {
        VmInsn &Site = Code[IP - 1];
        if (++Site.C == VmQuickenThreshold)
          Site.Op = VmOp::QGetMemberMono;
        if (Site.Op == VmOp::QGetMemberMono)
          ++Loader.vmChunkCache().Stats.QuickenedSites;
      }
      Value Base = pop();
      Completion R = getProperty(Base, M->name(), M->loc(), M->id());
      VM_CHECK(R);
      Stack.push_back(std::move(R.V));
      break;
    }

    // -- Quickened forms (installed at runtime; deopt on guard miss) --------
    // Deopt restores the Prof opcode (the A operand was never touched),
    // zeroes the counter, and re-dispatches the same instruction, so the
    // generic path — with its exact counter and observer behavior —
    // executes this iteration.
#define VM_QNUM_CASE(OP, EXPR)                                                 \
  case VmOp::QNum##OP: {                                                       \
    Value &L = Stack[Stack.size() - 2];                                        \
    const Value &R = Stack.back();                                             \
    if (L.isNumber() && R.isNumber()) {                                        \
      double X = L.asNumber(), Y = R.asNumber();                               \
      L = (EXPR);                                                              \
      Stack.pop_back();                                                        \
      break;                                                                   \
    }                                                                          \
    Code[IP - 1].Op = VmOp::BinaryValueProf;                                   \
    Code[IP - 1].C = 0;                                                        \
    ++Loader.vmChunkCache().Stats.Deopts;                                      \
    --IP;                                                                      \
    break;                                                                     \
  }
      VM_QNUM_CASE(Add, Value::number(X + Y))
      VM_QNUM_CASE(Sub, Value::number(X - Y))
      VM_QNUM_CASE(Mul, Value::number(X * Y))
      VM_QNUM_CASE(Div, Value::number(X / Y))
      VM_QNUM_CASE(Mod, Value::number(jsNumberMod(X, Y)))
      VM_QNUM_CASE(Lt, Value::boolean(X < Y))
      VM_QNUM_CASE(Le, Value::boolean(X <= Y))
      VM_QNUM_CASE(Gt, Value::boolean(X > Y))
      VM_QNUM_CASE(Ge, Value::boolean(X >= Y))
      VM_QNUM_CASE(Eq, Value::boolean(X == Y))
      VM_QNUM_CASE(Ne, Value::boolean(X != Y))
#undef VM_QNUM_CASE

#define VM_QARITH_CASE(OP, EXPR)                                               \
  case VmOp::QArith##OP: {                                                     \
    Value &Old = Stack[Stack.size() - 2];                                      \
    const Value &R = Stack.back();                                             \
    if (Old.isNumber() && R.isNumber()) {                                      \
      double X = Old.asNumber(), Y = R.asNumber();                             \
      Old = (EXPR);                                                            \
      Stack.pop_back();                                                        \
      break;                                                                   \
    }                                                                          \
    Code[IP - 1].Op = VmOp::ApplyArithProf;                                    \
    Code[IP - 1].C = 0;                                                        \
    ++Loader.vmChunkCache().Stats.Deopts;                                      \
    --IP;                                                                      \
    break;                                                                     \
  }
      VM_QARITH_CASE(Add, Value::number(X + Y))
      VM_QARITH_CASE(Sub, Value::number(X - Y))
      VM_QARITH_CASE(Mul, Value::number(X * Y))
      VM_QARITH_CASE(Div, Value::number(X / Y))
#undef VM_QARITH_CASE

    case VmOp::QGetMemberMono: {
      // Inlined copy of getProperty's inline-cache hit path, guarded by
      // exactly its hit conditions; anything short of a clean data-slot
      // hit deopts so the generic path's counters (ICGetMisses is bumped
      // by getPropertySlow) and recording behavior stay byte-identical.
      auto *M = cast<MemberExpr>(Chunk.Nodes[I.A]);
      Value &BaseRef = Stack.back();
      if (Opts.EnableInlineCaches && BaseRef.isObject()) {
        Object *O = BaseRef.asObject();
        const InlineCache &IC = cacheAt(M->id());
        if (IC.GetShape && IC.GetShape == O->shape() &&
            icEligible(O, M->name())) {
          Object *Holder = O;
          bool Valid = true;
          for (uint8_t D = 0; D != IC.GetDepth; ++D) {
            Holder = Holder->proto();
            if (Holder != IC.GetChain[D] ||
                Holder->shape() != IC.GetChainShapes[D]) {
              Valid = false;
              break;
            }
          }
          if (Valid) {
            const PropertySlot &S = Holder->slotAt(IC.GetSlot);
            if (!S.isAccessor()) {
              ++Counters.ICGetHits;
              BaseRef = S.V;
              break;
            }
          }
        }
      }
      Code[IP - 1].Op = VmOp::GetMemberProf;
      Code[IP - 1].C = 0;
      ++Loader.vmChunkCache().Stats.Deopts;
      --IP;
      break;
    }
    }
  }

#undef VM_CHECK
#undef VM_ABRUPT
}
