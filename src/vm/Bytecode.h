//===- Bytecode.h - MiniJS bytecode chunks ----------------------*- C++ -*-===//
///
/// \file
/// Flat bytecode for one FunctionDef, produced by the VmCompiler and run by
/// Interpreter::runChunk. The design goal is NOT a different semantics but
/// the same one, cheaper: every opcode corresponds to a region of the tree
/// walker, performs exactly the walker's side effects (observer events,
/// inline-cache probes keyed by the same NodeIds, step/loop budget charges)
/// in the same order, and differs only in how control reaches it — a flat
/// instruction pointer instead of recursive dispatch with per-node
/// Completion records.
///
/// Step-budget parity contract: the walker charges one step at the entry of
/// every evalExpr and execStmt. Opcodes marked "step-fused" below charge
/// that step themselves (cheap leaf expressions); every other expression or
/// statement region begins with an explicit `Step`. Loop-head charges use
/// `LoopBudget` at exactly the walker's loop-head placement. Shared helpers
/// (callValue, runEval) charge their own entry steps in C++ for both
/// engines, so the Steps counter — and therefore the exact point where a
/// MaxSteps/cancellation abort fires — is identical under `--interp=ast`
/// and `--interp=vm`.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_VM_BYTECODE_H
#define JSAI_VM_BYTECODE_H

#include "runtime/Value.h"
#include "support/StringPool.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace jsai {

class Node;
class FunctionDef;
class VarDecl;

/// Jump operands use absolute instruction indices; NoTarget marks an unset
/// or absent one (e.g. a try without a finalizer).
inline constexpr uint32_t VmNoTarget = ~uint32_t(0);

enum class VmOp : uint8_t {
  // -- Budget charges -------------------------------------------------------
  Step,       ///< One walker step (expr/stmt entry). Aborts on exhaustion.
  LoopBudget, ///< One loop iteration + one step (walker loopBudget).

  // -- Pushes (step-fused leaf expressions) ---------------------------------
  Const,       ///< [step] push Consts[A].
  LoadIdent,   ///< [step] A=node(Ident), B=slot: lookup / p* / ReferenceError.
  LoadThis,    ///< [step] A=slot: push `this` binding / p* / undefined.
  Closure,     ///< [step] A=node(FunctionExpr): makeClosure, push.
  TypeofIdent, ///< [step] A=node(Ident), B=slot: typeof without operand eval.
  UpdateIdent, ///< [step] A=node(UpdateExpr over an Ident target), B=slot.

  // -- Pushes (no step; used mid-expression) --------------------------------
  PushUndef,
  LoadIdentNoThrow, ///< A=sym, B=slot: compound old value (missing -> p*/undef).

  // -- Stack shuffles -------------------------------------------------------
  Pop,
  Dup,  ///< a -> a a
  Dup2, ///< a b -> a b a b

  // -- Jumps ----------------------------------------------------------------
  Jump,            ///< A=target.
  JumpIfFalsePop,  ///< A=target: pop v; jump unless v.toBoolean().
  JumpIfTruePop,   ///< A=target: pop v; jump if v.toBoolean().
  LogicalJump,     ///< A=LogicalOp, B=target: peek; short-circuit keeps
                   ///< the value and jumps, else pops and falls through.
  OrOrShortcut,    ///< A=target, B=nip count: peek old; if truthy, erase B
                   ///< entries beneath it and jump; else pop it.
  CaseCompare,     ///< A=target: pop test; if strictEquals(peek disc, test)
                   ///< pop disc and jump.

  // -- Variables ------------------------------------------------------------
  StoreIdent,   ///< A=sym, B=slot: peek value, assignVariable (value stays).
  StoreIdentPop,///< A=sym, B=slot: pop value, assignVariable.

  // -- Operators ------------------------------------------------------------
  UnaryValue,  ///< A=UnaryOp: pop v, push result (Neg/Plus/Not/BitNot/Void).
  TypeofValue, ///< pop v, push typeof string.
  BinaryValue, ///< A=BinaryOp: pop rhs, lhs; push result.
  ApplyArith,  ///< A=AssignOp: pop rhs, old; push compound-assign result.

  // -- Property access ------------------------------------------------------
  GetMember,           ///< A=node(Member, static): pop base; getProperty
                       ///< with the node's inline cache; push.
  GetMemberComputed,   ///< A=node(Member, computed): pop index, base;
                       ///< dynamic-read protocol; push.
  GetMemberForCompound,///< A=node(Member, static): pop base copy; push old.
  GetMemberComputedForCompound, ///< A=node: pop index, base copies; push old.
  SetMember,           ///< A=node(Member, static): pop value, base; receiver
                       ///< inference + cached write; push value.
  SetMemberComputed,   ///< A=node(Member, computed): pop value, index, base;
                       ///< dynamic-write protocol; push value.
  UpdateMember,         ///< A=node(UpdateExpr, static member): pop base.
  UpdateMemberComputed, ///< A=node(UpdateExpr): pop index, base.
  DeleteMember,         ///< A=node(Member, static): pop base; push bool.
  DeleteMemberComputed, ///< A=node(Member, computed): pop index, base.

  // -- Calls ----------------------------------------------------------------
  ResolveMethodStatic,   ///< A=node(Member): pop base; push base, callee.
  ResolveMethodComputed, ///< A=node(Member): pop index, base; push base, callee.
  Call,       ///< A=node(Call), B=argc: pop args, callee; this=undefined.
  CallMethod, ///< A=node(Call), B=argc: pop args, callee, base(this).
  New,        ///< A=node(New), B=argc: pop args, callee; construct.
  DirectEval, ///< A=node(Call): pop arg; direct-eval semantics.

  // -- Allocation -----------------------------------------------------------
  NewObjectLit,    ///< A=node(ObjectLit): allocate + onObjectCreated; push.
  SetOwnProp,      ///< A=node(ObjectLit), B=prop idx: pop value; peek obj.
  SetAccessorProp, ///< A=node(ObjectLit), B=prop idx: pop accessor; peek obj.
  SetComputedProp, ///< A=node(ObjectLit), B=prop idx: pop key, value; peek
                   ///< obj; write completion discarded (walker parity).
  MakeArray,       ///< A=node(ArrayLit), B=count: pop count elems; push array.

  // -- for-in / for-of ------------------------------------------------------
  ForInInit, ///< A=node(ForIn), B=end target: pop obj; either push iteration
             ///< state or jump past the loop (non-object / proxy).
  ForInNext, ///< A=node(ForIn), B=cleanup target: exhausted -> jump; else
             ///< loop-budget charge and push the next item.
  ForInBindVar,    ///< A=sym, B=slot: pop item, assignVariable.
  ForInBindMember, ///< A=node(Member): pop base, item; static writes only.
  ForInEnd,        ///< pop iteration state.

  // -- try / catch / finally ------------------------------------------------
  TryEnter,  ///< A=catch target (NoTarget if none), B=finally target.
  TryExit,   ///< pop the handler frame (normal or early exit).
  CatchBind, ///< A=sym or InvalidSymbol, B=slot: bind pending throw's value.
  Throw,     ///< pop v; unwind with Throw(v).
  Rethrow,   ///< unwind with the pending completion (after a finalizer).

  // -- Chunk exits ----------------------------------------------------------
  StashRet,      ///< pop v into the return slot (before inlined finalizers).
  ReturnStashed, ///< exit chunk with Return(return slot).
  ReturnValue,   ///< pop v; exit chunk with Return(v).
  ReturnNormal,  ///< exit chunk with Normal (body fell off the end).
  ReturnBrk,     ///< exit chunk with Break (stray break, walker parity).
  ReturnCont,    ///< exit chunk with Continue (stray continue).

  // -- Superinstructions (emitted only by the VmOptimizer; --vm-opt=on) -----
  // Each fuses an adjacent pair (or run) the compiler emits for hot shapes
  // and charges exactly the steps its members would have charged, in one
  // lump. Lumping is abort-equivalent: the fused members perform no
  // observable effect between their individual charges, so the Steps
  // counter after the fused charge — and hence whether it crossed MaxSteps
  // — is identical to the sequential execution.
  StepN,          ///< A=count: charge A fused walker steps at once.
  ConstBinary,    ///< [step] A=const idx, B=BinaryOp: Const + BinaryValue.
  IdentBinary,    ///< [step] A=node(Ident), B=slot, C=BinaryOp: LoadIdent +
                  ///< BinaryValue with the rhs loaded in place.
  ConstArith,     ///< [step] A=const idx, B=AssignOp: Const + ApplyArith.
  IdentArith,     ///< [step] A=node(Ident), B=slot, C=AssignOp.
  CmpBranchFalse, ///< A=BinaryOp (strict comparison), B=target: BinaryValue +
                  ///< JumpIfFalsePop without materializing the boolean.
  ConstCmpBranchFalse, ///< [step] A=const idx, B=BinaryOp, C=target: Const +
                       ///< BinaryValue + JumpIfFalsePop.
  IdentGetMember, ///< [step] A=node(Ident), B=slot, C=node(Member): LoadIdent
                  ///< + GetMember with the base never touching the stack.
  IdentMethod,    ///< [step] A=node(Ident), B=slot, C=node(Member): LoadIdent
                  ///< + ResolveMethodStatic (fused call receiver).

  // -- Profiling variants (installed by the optimizer in place of the -------
  // -- generic forms; count type feedback in C and quicken at a threshold ---
  BinaryValueProf, ///< BinaryValue; number-number executions bump C.
  ApplyArithProf,  ///< ApplyArith; number-number executions bump C.
  GetMemberProf,   ///< GetMember; cacheable-base executions bump C.

  // -- Quickened forms (rewritten in place at runtime; every execution ------
  // -- re-checks its guard and deoptimizes back to the Prof form on miss ----
  QNumAdd, ///< A=BinaryOp (preserved for deopt): number fast path only.
  QNumSub,
  QNumMul,
  QNumDiv,
  QNumMod,
  QNumLt,
  QNumLe,
  QNumGt,
  QNumGe,
  QNumEq, ///< strict === over two numbers.
  QNumNe, ///< strict !== over two numbers.
  QArithAdd, ///< A=AssignOp (preserved for deopt).
  QArithSub,
  QArithMul,
  QArithDiv,
  QGetMemberMono, ///< A=node(Member): monomorphic shape-IC hit path only.
};

/// Number of opcodes; sizes the per-opcode execution counter table.
inline constexpr size_t VmNumOps = size_t(VmOp::QGetMemberMono) + 1;

/// Human-readable opcode mnemonic (bench ablation tables).
const char *vmOpName(VmOp Op);

struct VmInsn {
  VmOp Op;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0; ///< Third operand; quickening counter for Prof opcodes.
};

/// Compiled form of one FunctionDef. Referenced AST nodes carry the same
/// NodeIds the walker uses, so inline caches, diagnostics locations, and
/// observer events are shared verbatim between engines.
///
/// Every identifier-touching opcode also carries a compile-time slot id
/// (one per distinct symbol in the function). runChunk resolves each slot
/// to the binding's Value* at most once per invocation and reuses the
/// pointer afterwards: a function's own binding set is fixed after entry
/// (hoisting happens in callClosure, eval defines into a child frame, and
/// implicit globals land in the outermost frame), so a resolved pointer can
/// never become shadowed, and unordered_map value pointers are stable under
/// insertion. Misses (unbound globals) are never cached.
struct VmChunk {
  FunctionDef *Func = nullptr;
  std::vector<VmInsn> Code;
  std::vector<Value> Consts;
  std::vector<Node *> Nodes;
  uint32_t NumSlots = 0;   ///< Distinct symbols; sizes runChunk's slot cache.
  bool Optimized = false;  ///< Ran through the VmOptimizer (may self-rewrite).
};

/// Counters for the bytecode optimization layer, surfaced only in the
/// timings-gated JSONL interp block and bench ablation tables. Deliberately
/// NOT part of InterpStats or ApproxStats: those are equality-compared
/// across engine configurations by the parity tests, and these counters are
/// configuration-dependent by construction.
struct VmOptStats {
  uint64_t ChunkCompiles = 0;  ///< Chunks compiled fresh into the cache.
  uint64_t ChunkReuses = 0;    ///< chunkFor served from a prior invocation.
  uint64_t FusedInsns = 0;     ///< Instructions removed by peephole fusion.
  uint64_t QuickenedSites = 0; ///< Generic -> specialized in-place rewrites.
  uint64_t Deopts = 0;         ///< Specialized -> generic on a guard miss.
};

/// Cross-invocation chunk cache, owned by the ModuleLoader so every
/// execution sharing one parse (the approx worklist's per-component
/// interpreters, the dynamic call-graph run, serve re-requests) reuses
/// compiled+optimized chunks instead of recompiling. Keyed by FunctionDef
/// pointer, which is stable for the lifetime of the owning AstContext —
/// exactly the loader's lifetime — so no invalidation is ever needed;
/// eval-parsed bodies get fresh FunctionDefs and therefore fresh entries.
/// Optimized and plain chunks live in separate slots: interpreters with
/// different VmOptimize settings may share one loader (parity harnesses),
/// and a chunk that may quicken itself in place must never be observed by a
/// --vm-opt=off interpreter.
class VmChunkCache {
public:
  struct Entry {
    std::unique_ptr<VmChunk> Plain; ///< --vm-opt=off form.
    std::unique_ptr<VmChunk> Opt;   ///< Fused + quickenable form.
  };

  std::unordered_map<FunctionDef *, Entry> Entries;
  VmOptStats Stats;

  /// Lazily allocated per-opcode execution counters (zero-initialized),
  /// shared by every interpreter on this loader. Null until an interpreter
  /// opted into counting; the dispatch loop tests one pointer per insn.
  uint64_t *ensureOpcodeCounts() {
    if (!OpCounts)
      OpCounts = std::make_unique<uint64_t[]>(VmNumOps);
    return OpCounts.get();
  }
  const uint64_t *opcodeCounts() const { return OpCounts.get(); }

private:
  std::unique_ptr<uint64_t[]> OpCounts;
};

} // namespace jsai

#endif // JSAI_VM_BYTECODE_H
