//===- EngineKind.h - Interpreter engine selection --------------*- C++ -*-===//
///
/// \file
/// Which execution engine the MiniJS interpreter uses for function bodies.
/// `Ast` is the original tree walker and stays the differential oracle;
/// `Vm` compiles each FunctionDef to flat bytecode once and dispatches it
/// in a single switch loop. The two engines are observationally identical
/// — same hints, observer event sequences, InterpStats, console output,
/// and step/loop budget accounting — so every metric artifact is
/// byte-identical under either mode and the golden-metrics gate runs
/// against the same committed hashes for both.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_VM_ENGINEKIND_H
#define JSAI_VM_ENGINEKIND_H

#include <cstdint>

namespace jsai {

enum class InterpEngineKind : uint8_t {
  Ast,
  Vm,
};

/// Process-wide default engine for newly constructed interpreters.
/// Initialized once from the JSAI_INTERP environment variable ("ast" or
/// "vm"; anything else means Ast) so the test suite and golden-metrics
/// benches can be swept across engines without per-binary flag plumbing;
/// the CLI's --interp= overrides it at startup. Set it before spawning
/// workers — reads after that are unsynchronized.
InterpEngineKind defaultInterpEngineKind();
void setDefaultInterpEngineKind(InterpEngineKind K);
const char *interpEngineKindName(InterpEngineKind K);
/// Parses "ast" / "vm". \returns false on anything else.
bool parseInterpEngineKind(const char *Name, InterpEngineKind &Out);

/// Process-wide default for the VM's bytecode optimization layer
/// (peephole superinstructions + runtime quickening + chunk reuse).
/// Initialized once from JSAI_VM_OPT ("on" or "off"; anything else keeps
/// the built-in default of on); the CLI's --vm-opt= overrides it at
/// startup. Optimization never changes observable behavior — hints,
/// InterpStats, budgets, and abort points are byte-identical either way —
/// so it is deliberately absent from every config fingerprint. No effect
/// under --interp=ast.
bool defaultVmOptEnabled();
void setDefaultVmOptEnabled(bool On);
const char *vmOptModeName(bool On);
/// Parses "on" / "off". \returns false on anything else.
bool parseVmOptMode(const char *Name, bool &Out);

} // namespace jsai

#endif // JSAI_VM_ENGINEKIND_H
