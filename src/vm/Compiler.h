//===- Compiler.h - AST -> bytecode compiler --------------------*- C++ -*-===//
///
/// \file
/// Compiles one FunctionDef's body to a VmChunk. The compiler is purely
/// syntax-driven (no interpreter state): control flow becomes jumps,
/// `try` regions become handler frames with finalizers inlined on every
/// normal or early exit path, and each opcode carries the AST node it
/// stands for so the VM can reuse the walker's inline caches, observer
/// locations, and diagnostics verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_VM_COMPILER_H
#define JSAI_VM_COMPILER_H

#include "ast/Ast.h"
#include "vm/Bytecode.h"

#include <memory>
#include <unordered_map>

namespace jsai {

class VmCompiler {
public:
  explicit VmCompiler(AstContext &Ctx) : Ctx(Ctx) {}

  std::unique_ptr<VmChunk> compile(FunctionDef *Def);

private:
  /// One enclosing construct a `break`/`continue`/`return` may cross.
  /// Finalizers are inlined at every exit edge, compiled against the scope
  /// stack as it stands outside their `try` — so an abrupt completion
  /// inside a finalizer naturally jumps away first (abrupt-wins).
  struct Scope {
    enum ScopeKind : uint8_t { Loop, ForInLoop, Switch, Try } Kind;
    std::vector<uint32_t> BreakPatches;    // Jump insns -> loop/switch end.
    std::vector<uint32_t> ContinuePatches; // Jump insns -> loop continue.
    BlockStmt *Finalizer = nullptr;        // Try only (may be null).
  };

  uint32_t emit(VmOp Op, uint32_t A = 0, uint32_t B = 0);
  uint32_t here() const { return uint32_t(Chunk->Code.size()); }
  void patchA(uint32_t Insn, uint32_t Target) { Chunk->Code[Insn].A = Target; }
  void patchB(uint32_t Insn, uint32_t Target) { Chunk->Code[Insn].B = Target; }
  uint32_t addNode(Node *N);
  uint32_t addConst(Value V);
  /// Slot id for \p Name's binding-pointer cache (one per distinct symbol).
  uint32_t slotFor(Symbol Name);

  void compileStmt(Stmt *S);
  void compileBlockBody(const std::vector<Stmt *> &Body);
  void compileExpr(Expr *E);
  void compileAssign(AssignExpr *A);
  void compileCall(CallExpr *C);
  void compileTry(TryStmt *T);
  void compileSwitch(SwitchStmt *W);
  void compileForIn(ForInStmt *L);

  /// Emits the unwind path of a break (IsBreak) or continue: try frames
  /// popped and finalizers inlined up to the jump target.
  void emitBranchOut(bool IsBreak);
  /// Emits the unwind path of `return` (value already on the stack).
  void emitReturnPath();
  void emitReturnUnwind();

  std::vector<Scope> detachFrom(size_t I);
  void reattach(std::vector<Scope> &Tail);

  AstContext &Ctx;
  VmChunk *Chunk = nullptr;
  std::vector<Scope> Scopes;
  std::unordered_map<Symbol, uint32_t> SlotIds;
};

} // namespace jsai

#endif // JSAI_VM_COMPILER_H
