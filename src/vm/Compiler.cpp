//===- Compiler.cpp - AST -> bytecode compiler ----------------------------===//
//
// Layout invariants (the step-parity contract lives here):
//
//  - Every statement region and every composite expression begins with an
//    explicit Step; leaf expressions use step-fused opcodes instead.
//  - Loop heads charge LoopBudget exactly where the walker's loops do:
//    before the condition (while/for), before the body (do-while), before
//    each binding (for-in, via ForInNext).
//  - Expression code always nets exactly one pushed value; statement code
//    nets zero. Abrupt exits (throw/abort) unwind through TryEnter frames
//    at runtime; break/continue/return are resolved at compile time by
//    inlining TryExit + finalizer code along the exit edge.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include <cassert>

using namespace jsai;

uint32_t VmCompiler::emit(VmOp Op, uint32_t A, uint32_t B) {
  Chunk->Code.push_back(VmInsn{Op, A, B});
  return uint32_t(Chunk->Code.size() - 1);
}

uint32_t VmCompiler::addNode(Node *N) {
  Chunk->Nodes.push_back(N);
  return uint32_t(Chunk->Nodes.size() - 1);
}

uint32_t VmCompiler::addConst(Value V) {
  Chunk->Consts.push_back(std::move(V));
  return uint32_t(Chunk->Consts.size() - 1);
}

uint32_t VmCompiler::slotFor(Symbol Name) {
  auto [It, Inserted] = SlotIds.try_emplace(Name, uint32_t(SlotIds.size()));
  return It->second;
}

std::vector<VmCompiler::Scope> VmCompiler::detachFrom(size_t I) {
  std::vector<Scope> Tail(std::make_move_iterator(Scopes.begin() + I),
                          std::make_move_iterator(Scopes.end()));
  Scopes.resize(I);
  return Tail;
}

void VmCompiler::reattach(std::vector<Scope> &Tail) {
  for (Scope &S : Tail)
    Scopes.push_back(std::move(S));
}

std::unique_ptr<VmChunk> VmCompiler::compile(FunctionDef *Def) {
  auto Out = std::make_unique<VmChunk>();
  Out->Func = Def;
  Chunk = Out.get();
  Scopes.clear();
  SlotIds.clear();
  compileBlockBody(Def->body()->body());
  emit(VmOp::ReturnNormal);
  Out->NumSlots = uint32_t(SlotIds.size());
  Chunk = nullptr;
  return Out;
}

void VmCompiler::compileBlockBody(const std::vector<Stmt *> &Body) {
  for (Stmt *S : Body)
    compileStmt(S);
}

//===----------------------------------------------------------------------===//
// Exit edges
//===----------------------------------------------------------------------===//

void VmCompiler::emitBranchOut(bool IsBreak) {
  for (size_t I = Scopes.size(); I-- > 0;) {
    Scope &S = Scopes[I];
    if (S.Kind == Scope::Try) {
      emit(VmOp::TryExit);
      if (S.Finalizer) {
        BlockStmt *Fin = S.Finalizer;
        std::vector<Scope> Tail = detachFrom(I);
        compileBlockBody(Fin->body());
        emitBranchOut(IsBreak);
        reattach(Tail);
        return;
      }
      continue;
    }
    if (S.Kind == Scope::Loop || S.Kind == Scope::ForInLoop ||
        (IsBreak && S.Kind == Scope::Switch)) {
      uint32_t J = emit(VmOp::Jump);
      (IsBreak ? S.BreakPatches : S.ContinuePatches).push_back(J);
      return;
    }
    // A Switch crossed by `continue` needs no cleanup: its discriminant
    // was popped before the case bodies started.
  }
  // No enclosing target: the stray completion escapes the function body,
  // exactly like the walker's Break/Continue completions.
  emit(IsBreak ? VmOp::ReturnBrk : VmOp::ReturnCont);
}

void VmCompiler::emitReturnPath() {
  bool AnyTry = false;
  for (const Scope &S : Scopes)
    AnyTry |= S.Kind == Scope::Try;
  if (!AnyTry) {
    emit(VmOp::ReturnValue);
    return;
  }
  emit(VmOp::StashRet);
  emitReturnUnwind();
}

void VmCompiler::emitReturnUnwind() {
  for (size_t I = Scopes.size(); I-- > 0;) {
    Scope &S = Scopes[I];
    if (S.Kind != Scope::Try)
      continue; // Loop/switch/for-in state dies with the chunk frame.
    emit(VmOp::TryExit);
    if (S.Finalizer) {
      BlockStmt *Fin = S.Finalizer;
      std::vector<Scope> Tail = detachFrom(I);
      compileBlockBody(Fin->body());
      emitReturnUnwind();
      reattach(Tail);
      return;
    }
  }
  emit(VmOp::ReturnStashed);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void VmCompiler::compileStmt(Stmt *S) {
  switch (S->kind()) {
  case NodeKind::ExprStmt:
    emit(VmOp::Step);
    compileExpr(cast<ExprStmt>(S)->expr());
    emit(VmOp::Pop);
    return;
  case NodeKind::VarDeclStmt:
    emit(VmOp::Step);
    for (const VarDeclarator &D : cast<VarDeclStmt>(S)->declarators()) {
      if (!D.Init)
        continue;
      compileExpr(D.Init);
      emit(VmOp::StoreIdentPop, D.Decl->name(), slotFor(D.Decl->name()));
    }
    return;
  case NodeKind::FunctionDeclStmt: // Hoisted at function entry.
  case NodeKind::Empty:
    emit(VmOp::Step);
    return;
  case NodeKind::Block:
    emit(VmOp::Step);
    compileBlockBody(cast<BlockStmt>(S)->body());
    return;
  case NodeKind::If: {
    auto *I = cast<IfStmt>(S);
    emit(VmOp::Step);
    compileExpr(I->cond());
    uint32_t JF = emit(VmOp::JumpIfFalsePop);
    compileStmt(I->thenStmt());
    if (I->elseStmt()) {
      uint32_t JEnd = emit(VmOp::Jump);
      patchA(JF, here());
      compileStmt(I->elseStmt());
      patchA(JEnd, here());
    } else {
      patchA(JF, here());
    }
    return;
  }
  case NodeKind::While: {
    auto *W = cast<WhileStmt>(S);
    emit(VmOp::Step);
    Scopes.push_back({Scope::Loop, {}, {}, nullptr});
    uint32_t Head = here();
    emit(VmOp::LoopBudget);
    compileExpr(W->cond());
    uint32_t JF = emit(VmOp::JumpIfFalsePop);
    compileStmt(W->body());
    emit(VmOp::Jump, Head);
    uint32_t End = here();
    patchA(JF, End);
    Scope L = std::move(Scopes.back());
    Scopes.pop_back();
    for (uint32_t J : L.BreakPatches)
      patchA(J, End);
    for (uint32_t J : L.ContinuePatches)
      patchA(J, Head);
    return;
  }
  case NodeKind::DoWhile: {
    auto *W = cast<DoWhileStmt>(S);
    emit(VmOp::Step);
    Scopes.push_back({Scope::Loop, {}, {}, nullptr});
    uint32_t Head = here();
    emit(VmOp::LoopBudget);
    compileStmt(W->body());
    uint32_t CondL = here();
    compileExpr(W->cond());
    emit(VmOp::JumpIfTruePop, Head);
    uint32_t End = here();
    Scope L = std::move(Scopes.back());
    Scopes.pop_back();
    for (uint32_t J : L.BreakPatches)
      patchA(J, End);
    for (uint32_t J : L.ContinuePatches)
      patchA(J, CondL);
    return;
  }
  case NodeKind::For: {
    auto *L = cast<ForStmt>(S);
    emit(VmOp::Step);
    if (L->init())
      compileStmt(L->init());
    Scopes.push_back({Scope::Loop, {}, {}, nullptr});
    uint32_t Head = here();
    emit(VmOp::LoopBudget);
    uint32_t JF = VmNoTarget;
    if (L->cond()) {
      compileExpr(L->cond());
      JF = emit(VmOp::JumpIfFalsePop);
    }
    compileStmt(L->body());
    uint32_t StepL = here();
    if (L->step()) {
      compileExpr(L->step());
      emit(VmOp::Pop);
    }
    emit(VmOp::Jump, Head);
    uint32_t End = here();
    if (JF != VmNoTarget)
      patchA(JF, End);
    Scope Sc = std::move(Scopes.back());
    Scopes.pop_back();
    for (uint32_t J : Sc.BreakPatches)
      patchA(J, End);
    for (uint32_t J : Sc.ContinuePatches)
      patchA(J, StepL);
    return;
  }
  case NodeKind::ForIn:
    compileForIn(cast<ForInStmt>(S));
    return;
  case NodeKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    emit(VmOp::Step);
    if (R->value())
      compileExpr(R->value());
    else
      emit(VmOp::PushUndef);
    emitReturnPath();
    return;
  }
  case NodeKind::Break:
    emit(VmOp::Step);
    emitBranchOut(/*IsBreak=*/true);
    return;
  case NodeKind::Continue:
    emit(VmOp::Step);
    emitBranchOut(/*IsBreak=*/false);
    return;
  case NodeKind::Throw:
    emit(VmOp::Step);
    compileExpr(cast<ThrowStmt>(S)->value());
    emit(VmOp::Throw);
    return;
  case NodeKind::Try:
    compileTry(cast<TryStmt>(S));
    return;
  case NodeKind::Switch:
    compileSwitch(cast<SwitchStmt>(S));
    return;
  default:
    assert(false && "expression node in statement compilation");
    return;
  }
}

void VmCompiler::compileForIn(ForInStmt *L) {
  emit(VmOp::Step);
  compileExpr(L->object());
  uint32_t Init = emit(VmOp::ForInInit, addNode(L));
  Scopes.push_back({Scope::ForInLoop, {}, {}, nullptr});
  uint32_t Head = here();
  uint32_t Next = emit(VmOp::ForInNext, addNode(L));
  if (L->decl()) {
    emit(VmOp::ForInBindVar, L->decl()->name(),
         slotFor(L->decl()->name()));
  } else if (auto *I = dyn_cast<Ident>(L->target())) {
    emit(VmOp::ForInBindVar, I->name(), slotFor(I->name()));
  } else if (auto *M = dyn_cast<MemberExpr>(L->target())) {
    // The walker evaluates the member's object every iteration but only
    // writes through static (non-computed) targets.
    compileExpr(M->object());
    emit(VmOp::ForInBindMember, addNode(M));
  }
  compileStmt(L->body());
  emit(VmOp::Jump, Head);
  uint32_t Cleanup = here();
  emit(VmOp::ForInEnd);
  uint32_t End = here();
  patchB(Init, End);     // Non-object/proxy: skip the loop, no state pushed.
  patchB(Next, Cleanup); // Exhausted: pop the iteration state.
  Scope Sc = std::move(Scopes.back());
  Scopes.pop_back();
  for (uint32_t J : Sc.BreakPatches)
    patchA(J, Cleanup);
  for (uint32_t J : Sc.ContinuePatches)
    patchA(J, Head);
}

void VmCompiler::compileTry(TryStmt *T) {
  emit(VmOp::Step);
  bool HasHandler = T->handler() != nullptr;
  bool HasFinalizer = T->finalizer() != nullptr;
  if (!HasHandler && !HasFinalizer) {
    // Degenerate `try {}`: no frame needed.
    compileBlockBody(T->body()->body());
    return;
  }

  uint32_t Enter = emit(VmOp::TryEnter, VmNoTarget, VmNoTarget);
  Scopes.push_back(
      {Scope::Try, {}, {}, HasFinalizer ? T->finalizer() : nullptr});
  compileBlockBody(T->body()->body());
  emit(VmOp::TryExit);
  Scopes.pop_back();
  if (HasFinalizer)
    compileBlockBody(T->finalizer()->body());
  uint32_t JBodyEnd = emit(VmOp::Jump);

  uint32_t JHandlerEnd = VmNoTarget;
  if (HasHandler) {
    patchA(Enter, here());
    emit(VmOp::CatchBind,
         T->catchParam() ? T->catchParam()->name() : InvalidSymbol,
         T->catchParam() ? slotFor(T->catchParam()->name()) : 0);
    uint32_t Enter2 = VmNoTarget;
    if (HasFinalizer) {
      // The handler needs its own frame so a throw (or abort) inside it
      // still runs the finalizer before propagating.
      Enter2 = emit(VmOp::TryEnter, VmNoTarget, VmNoTarget);
      Scopes.push_back({Scope::Try, {}, {}, T->finalizer()});
    }
    compileBlockBody(T->handler()->body());
    if (HasFinalizer) {
      emit(VmOp::TryExit);
      Scopes.pop_back();
      compileBlockBody(T->finalizer()->body());
    }
    JHandlerEnd = emit(VmOp::Jump);
    if (Enter2 != VmNoTarget)
      patchB(Enter2, here()); // Falls through to the rethrow block below.
  }

  if (HasFinalizer) {
    // Abrupt path: an uncaught throw or an abort lands here with the
    // completion pending; the finalizer runs, then the completion resumes
    // (unless the finalizer itself completed abruptly and jumped away).
    patchB(Enter, here());
    compileBlockBody(T->finalizer()->body());
    emit(VmOp::Rethrow);
  }

  uint32_t End = here();
  patchA(JBodyEnd, End);
  if (JHandlerEnd != VmNoTarget)
    patchA(JHandlerEnd, End);
}

void VmCompiler::compileSwitch(SwitchStmt *W) {
  emit(VmOp::Step);
  compileExpr(W->discriminant());
  Scopes.push_back({Scope::Switch, {}, {}, nullptr});

  const auto &Cases = W->cases();
  std::vector<uint32_t> CaseJumps(Cases.size(), VmNoTarget);
  size_t DefaultIdx = Cases.size();
  for (size_t I = 0; I != Cases.size(); ++I) {
    if (!Cases[I].Test) {
      DefaultIdx = I; // Default is skipped during matching.
      continue;
    }
    compileExpr(Cases[I].Test);
    CaseJumps[I] = emit(VmOp::CaseCompare);
  }
  emit(VmOp::Pop); // No match: discard the discriminant.
  uint32_t JDefault = emit(VmOp::Jump);

  std::vector<uint32_t> BodyStarts(Cases.size());
  for (size_t I = 0; I != Cases.size(); ++I) {
    BodyStarts[I] = here(); // Bodies are sequential: fall-through is free.
    compileBlockBody(Cases[I].Body);
  }
  uint32_t End = here();
  for (size_t I = 0; I != Cases.size(); ++I)
    if (CaseJumps[I] != VmNoTarget)
      patchA(CaseJumps[I], BodyStarts[I]);
  patchA(JDefault, DefaultIdx != Cases.size() ? BodyStarts[DefaultIdx] : End);
  Scope Sc = std::move(Scopes.back());
  Scopes.pop_back();
  for (uint32_t J : Sc.BreakPatches)
    patchA(J, End);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void VmCompiler::compileExpr(Expr *E) {
  switch (E->kind()) {
  case NodeKind::NumberLit:
    emit(VmOp::Const, addConst(Value::number(cast<NumberLit>(E)->value())));
    return;
  case NodeKind::StringLit:
    emit(VmOp::Const,
         addConst(Value::str(Ctx.strings().str(cast<StringLit>(E)->value()))));
    return;
  case NodeKind::BoolLit:
    emit(VmOp::Const, addConst(Value::boolean(cast<BoolLit>(E)->value())));
    return;
  case NodeKind::NullLit:
    emit(VmOp::Const, addConst(Value::null()));
    return;
  case NodeKind::UndefinedLit:
    emit(VmOp::Const, addConst(Value::undefined()));
    return;
  case NodeKind::Ident:
    emit(VmOp::LoadIdent, addNode(E), slotFor(cast<Ident>(E)->name()));
    return;
  case NodeKind::This:
    emit(VmOp::LoadThis, slotFor(Ctx.SymThis));
    return;
  case NodeKind::ObjectLit: {
    auto *O = cast<ObjectLit>(E);
    emit(VmOp::Step);
    uint32_t ONode = addNode(O);
    emit(VmOp::NewObjectLit, ONode);
    const auto &Props = O->properties();
    for (uint32_t I = 0; I != uint32_t(Props.size()); ++I) {
      const ObjectProperty &P = Props[I];
      compileExpr(P.Value);
      if (P.PKind != PropertyKind::Value) {
        emit(VmOp::SetAccessorProp, ONode, I);
      } else if (P.KeyExpr) {
        compileExpr(P.KeyExpr); // Key evaluated after the value (walker order).
        emit(VmOp::SetComputedProp, ONode, I);
      } else {
        emit(VmOp::SetOwnProp, ONode, I);
      }
    }
    return;
  }
  case NodeKind::ArrayLit: {
    auto *A = cast<ArrayLit>(E);
    emit(VmOp::Step);
    for (Expr *El : A->elements())
      compileExpr(El);
    emit(VmOp::MakeArray, addNode(A), uint32_t(A->elements().size()));
    return;
  }
  case NodeKind::FunctionExpr:
    emit(VmOp::Closure, addNode(E));
    return;
  case NodeKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOp::Typeof) {
      if (isa<Ident>(U->operand())) {
        emit(VmOp::TypeofIdent, addNode(U->operand()),
             slotFor(cast<Ident>(U->operand())->name()));
        return;
      }
      emit(VmOp::Step);
      compileExpr(U->operand());
      emit(VmOp::TypeofValue);
      return;
    }
    if (U->op() == UnaryOp::Delete) {
      if (auto *M = dyn_cast<MemberExpr>(U->operand())) {
        emit(VmOp::Step);
        compileExpr(M->object());
        if (M->isComputed()) {
          compileExpr(M->index());
          emit(VmOp::DeleteMemberComputed, addNode(M));
        } else {
          emit(VmOp::DeleteMember, addNode(M));
        }
        return;
      }
      // `delete nonMember` is true without evaluating the operand.
      emit(VmOp::Const, addConst(Value::boolean(true)));
      return;
    }
    emit(VmOp::Step);
    compileExpr(U->operand());
    emit(VmOp::UnaryValue, uint32_t(U->op()));
    return;
  }
  case NodeKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    emit(VmOp::Step);
    compileExpr(B->lhs());
    compileExpr(B->rhs());
    emit(VmOp::BinaryValue, uint32_t(B->op()));
    return;
  }
  case NodeKind::Logical: {
    auto *L = cast<LogicalExpr>(E);
    emit(VmOp::Step);
    compileExpr(L->lhs());
    uint32_t J = emit(VmOp::LogicalJump, uint32_t(L->op()));
    compileExpr(L->rhs());
    patchB(J, here());
    return;
  }
  case NodeKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    emit(VmOp::Step);
    compileExpr(C->cond());
    uint32_t JF = emit(VmOp::JumpIfFalsePop);
    compileExpr(C->thenExpr());
    uint32_t JEnd = emit(VmOp::Jump);
    patchA(JF, here());
    compileExpr(C->elseExpr());
    patchA(JEnd, here());
    return;
  }
  case NodeKind::Assign:
    compileAssign(cast<AssignExpr>(E));
    return;
  case NodeKind::Update: {
    auto *U = cast<UpdateExpr>(E);
    if (isa<Ident>(U->target())) {
      emit(VmOp::UpdateIdent, addNode(U),
           slotFor(cast<Ident>(U->target())->name()));
      return;
    }
    auto *M = cast<MemberExpr>(U->target());
    emit(VmOp::Step);
    compileExpr(M->object());
    if (M->isComputed()) {
      compileExpr(M->index());
      emit(VmOp::UpdateMemberComputed, addNode(U));
    } else {
      emit(VmOp::UpdateMember, addNode(U));
    }
    return;
  }
  case NodeKind::Call:
    compileCall(cast<CallExpr>(E));
    return;
  case NodeKind::New: {
    auto *N = cast<NewExpr>(E);
    emit(VmOp::Step);
    compileExpr(N->callee());
    for (Expr *A : N->args())
      compileExpr(A);
    emit(VmOp::New, addNode(N), uint32_t(N->args().size()));
    return;
  }
  case NodeKind::Member: {
    auto *M = cast<MemberExpr>(E);
    emit(VmOp::Step);
    compileExpr(M->object());
    if (M->isComputed()) {
      compileExpr(M->index());
      emit(VmOp::GetMemberComputed, addNode(M));
    } else {
      emit(VmOp::GetMember, addNode(M));
    }
    return;
  }
  case NodeKind::Sequence: {
    auto *S = cast<SequenceExpr>(E);
    emit(VmOp::Step);
    if (S->exprs().empty()) {
      emit(VmOp::PushUndef);
      return;
    }
    for (size_t I = 0, N = S->exprs().size(); I != N; ++I) {
      compileExpr(S->exprs()[I]);
      if (I + 1 != N)
        emit(VmOp::Pop);
    }
    return;
  }
  default:
    assert(false && "statement node in expression compilation");
    return;
  }
}

void VmCompiler::compileAssign(AssignExpr *A) {
  emit(VmOp::Step);
  if (auto *I = dyn_cast<Ident>(A->target())) {
    if (A->op() == AssignOp::Assign) {
      compileExpr(A->value());
      emit(VmOp::StoreIdent, I->name(), slotFor(I->name()));
      return;
    }
    emit(VmOp::LoadIdentNoThrow, I->name(), slotFor(I->name()));
    if (A->op() == AssignOp::OrOr) {
      uint32_t SC = emit(VmOp::OrOrShortcut, VmNoTarget, /*nip=*/0);
      compileExpr(A->value());
      emit(VmOp::StoreIdent, I->name(), slotFor(I->name()));
      patchA(SC, here());
      return;
    }
    compileExpr(A->value());
    emit(VmOp::ApplyArith, uint32_t(A->op()));
    emit(VmOp::StoreIdent, I->name(), slotFor(I->name()));
    return;
  }

  auto *M = cast<MemberExpr>(A->target());
  uint32_t MNode = addNode(M);
  compileExpr(M->object());
  if (!M->isComputed()) {
    if (A->op() == AssignOp::Assign) {
      compileExpr(A->value());
      emit(VmOp::SetMember, MNode);
      return;
    }
    emit(VmOp::Dup);
    emit(VmOp::GetMemberForCompound, MNode);
    if (A->op() == AssignOp::OrOr) {
      uint32_t SC = emit(VmOp::OrOrShortcut, VmNoTarget, /*nip=*/1);
      compileExpr(A->value());
      emit(VmOp::SetMember, MNode);
      patchA(SC, here());
      return;
    }
    compileExpr(A->value());
    emit(VmOp::ApplyArith, uint32_t(A->op()));
    emit(VmOp::SetMember, MNode);
    return;
  }

  compileExpr(M->index());
  if (A->op() == AssignOp::Assign) {
    compileExpr(A->value());
    emit(VmOp::SetMemberComputed, MNode);
    return;
  }
  emit(VmOp::Dup2);
  emit(VmOp::GetMemberComputedForCompound, MNode);
  if (A->op() == AssignOp::OrOr) {
    uint32_t SC = emit(VmOp::OrOrShortcut, VmNoTarget, /*nip=*/2);
    compileExpr(A->value());
    emit(VmOp::SetMemberComputed, MNode);
    patchA(SC, here());
    return;
  }
  compileExpr(A->value());
  emit(VmOp::ApplyArith, uint32_t(A->op()));
  emit(VmOp::SetMemberComputed, MNode);
}

void VmCompiler::compileCall(CallExpr *C) {
  // Direct eval: an unresolved identifier callee named `eval`.
  if (auto *I = dyn_cast<Ident>(C->callee());
      I && I->name() == Ctx.WK.Eval && !I->decl()) {
    emit(VmOp::Step);
    if (C->args().empty())
      emit(VmOp::PushUndef); // No argument: nothing is evaluated.
    else
      compileExpr(C->args()[0]); // Only the first argument is evaluated.
    emit(VmOp::DirectEval, addNode(C));
    return;
  }

  emit(VmOp::Step);
  if (auto *M = dyn_cast<MemberExpr>(C->callee())) {
    compileExpr(M->object());
    if (M->isComputed()) {
      compileExpr(M->index());
      emit(VmOp::ResolveMethodComputed, addNode(M));
    } else {
      emit(VmOp::ResolveMethodStatic, addNode(M));
    }
    for (Expr *A : C->args())
      compileExpr(A);
    emit(VmOp::CallMethod, addNode(C), uint32_t(C->args().size()));
    return;
  }

  compileExpr(C->callee());
  for (Expr *A : C->args())
    compileExpr(A);
  emit(VmOp::Call, addNode(C), uint32_t(C->args().size()));
}
