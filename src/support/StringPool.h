//===- StringPool.h - String interning -------------------------*- C++ -*-===//
///
/// \file
/// Interned strings. Property names, identifiers and string constants are
/// interned into small integer Symbols so that the runtime, the approximate
/// interpreter's hint sets, and the static analysis's property constraint
/// variables can all compare and hash names in O(1).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_STRINGPOOL_H
#define JSAI_SUPPORT_STRINGPOOL_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

/// A handle to an interned string. Symbols from the same StringPool compare
/// equal iff the underlying strings are equal.
using Symbol = uint32_t;

/// An invalid symbol, never returned by StringPool::intern.
inline constexpr Symbol InvalidSymbol = ~Symbol(0);

/// Deduplicating string table. Symbols are dense indices, so iterating
/// symbol-keyed containers in symbol order is deterministic.
///
/// Not thread-safe: a StringPool (and the AstContext that owns it) belongs
/// to exactly one analysis job. The parallel corpus driver gives every job
/// its own pool; Symbols must never cross pools.
class StringPool {
public:
  /// Interns \p S, returning its stable symbol.
  Symbol intern(const std::string &S);

  /// \returns the symbol of \p S if already interned, else InvalidSymbol.
  Symbol lookup(const std::string &S) const;

  /// \returns the string for \p Sym. \p Sym must come from this pool.
  const std::string &str(Symbol Sym) const;

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, Symbol> Index;
};

} // namespace jsai

#endif // JSAI_SUPPORT_STRINGPOOL_H
