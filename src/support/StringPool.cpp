//===- StringPool.cpp -----------------------------------------------------===//

#include "support/StringPool.h"

#include <cassert>

using namespace jsai;

Symbol StringPool::intern(const std::string &S) {
  auto [It, Inserted] = Index.try_emplace(S, Symbol(Strings.size()));
  if (Inserted)
    Strings.push_back(S);
  return It->second;
}

Symbol StringPool::lookup(const std::string &S) const {
  auto It = Index.find(S);
  return It == Index.end() ? InvalidSymbol : It->second;
}

const std::string &StringPool::str(Symbol Sym) const {
  assert(Sym < Strings.size() && "symbol out of range");
  return Strings[Sym];
}
