//===- Rng.h - Deterministic random numbers ---------------------*- C++ -*-===//
///
/// \file
/// A small SplitMix64 generator. The synthetic benchmark corpus must be
/// byte-for-byte reproducible across runs and platforms, so we avoid
/// std::mt19937 distribution differences and seed everything explicitly.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_RNG_H
#define JSAI_SUPPORT_RNG_H

#include <cstdint>

namespace jsai {

/// SplitMix64: tiny, fast, and fully deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 random bits.
  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  /// \returns true with probability \p Percent / 100.
  bool chance(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

} // namespace jsai

#endif // JSAI_SUPPORT_RNG_H
