//===- Cancellation.h - Cooperative deadline tokens -------------*- C++ -*-===//
///
/// \file
/// Cooperative cancellation for long-running analysis phases. A
/// CancellationToken is armed with a wall-clock deadline and polled at the
/// engines' existing budget checkpoints (interpreter step/loop budgets, the
/// solver's worklist pops). Polling is throttled: the steady clock is read
/// only once every PollStride polls, so a poll costs one predictable branch
/// in the common case.
///
/// Once the deadline passes, the token latches: every subsequent expired()
/// and cancelled() call returns true until the token is re-armed or
/// disarmed. The latch is atomic so a supervising thread may observe a
/// worker's token, but arm()/disarm() and expired() must stay on the single
/// thread running the guarded phase (one token per job phase; see
/// DESIGN.md, "Parallel corpus driver").
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_CANCELLATION_H
#define JSAI_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jsai {

/// A deadline latch polled from analysis inner loops.
class CancellationToken {
public:
  /// Arms (or re-arms) the token: it expires \p Seconds from now.
  /// Re-arming clears a previous latch.
  void arm(double Seconds);

  /// Disarms the token; expired() returns false until the next arm().
  void disarm();

  bool armed() const { return Armed; }

  /// The poll point: \returns true once the deadline has passed. Reads the
  /// clock only every PollStride calls (and on the first call after arm());
  /// after the deadline it answers from the latch without clock reads.
  bool expired();

  /// \returns the latched state without polling the clock. Safe to call
  /// from another thread.
  bool cancelled() const {
    if (Latched.load(std::memory_order_relaxed))
      return true;
    const CancellationToken *P = Parent.load(std::memory_order_relaxed);
    return P && P->cancelled();
  }

  /// Latches the token immediately, independent of any armed deadline.
  /// Async-signal-safe when the latch is lock-free (a single atomic store),
  /// which is how the CLI's SIGINT/SIGTERM handlers request shutdown.
  void cancelNow() { Latched.store(true, std::memory_order_relaxed); }

  /// Chains this token to \p P: expired()/cancelled() also report true once
  /// the parent latches. Lets one externally-latched interrupt token (e.g.
  /// the signal token) fan out to every per-phase deadline token without
  /// sharing the single-threaded arm/poll state.
  void setParent(const CancellationToken *P) {
    Parent.store(P, std::memory_order_relaxed);
  }

private:
  /// Clock reads per poll; budget checkpoints fire every few interpreter
  /// steps, so a deadline is detected within well under a millisecond.
  static constexpr uint32_t PollStride = 256;

  std::chrono::steady_clock::time_point Deadline{};
  bool Armed = false;
  uint32_t PollsUntilCheck = 0;
  std::atomic<bool> Latched{false};
  std::atomic<const CancellationToken *> Parent{nullptr};
};

} // namespace jsai

#endif // JSAI_SUPPORT_CANCELLATION_H
