//===- AdaptiveSet.cpp ----------------------------------------------------===//
//
// Tier invariants:
//
//  - Small:  SmallElems[0..Num) is sorted ascending, Num <= SmallCapacity,
//            no heap storage in use.
//  - Sparse: Chunks is sorted by Idx, no chunk is all-zero, Words is empty.
//  - Dense:  Words is the word array; Chunks is empty (its storage is
//            released on promotion — a dense set never pays for both).
//
// Promotions are one-way (Small -> Sparse -> Dense) and content-driven, so
// identical insertion histories produce identical representations — the
// determinism the solver's stats and the golden-metrics gate rely on.
//
//===----------------------------------------------------------------------===//

#include "support/AdaptiveSet.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace jsai;

//===----------------------------------------------------------------------===//
// Representation default (env-seeded, CLI-overridable)
//===----------------------------------------------------------------------===//

namespace {

SolverSetKind &defaultKindStorage() {
  static SolverSetKind Kind = [] {
    SolverSetKind Parsed;
    if (const char *Env = std::getenv("JSAI_SOLVER_SET"))
      if (parseSolverSetKind(Env, Parsed))
        return Parsed;
    return SolverSetKind::Adaptive;
  }();
  return Kind;
}

} // namespace

SolverSetKind jsai::defaultSolverSetKind() { return defaultKindStorage(); }

void jsai::setDefaultSolverSetKind(SolverSetKind K) {
  defaultKindStorage() = K;
}

const char *jsai::solverSetKindName(SolverSetKind K) {
  return K == SolverSetKind::Dense ? "dense" : "adaptive";
}

bool jsai::parseSolverSetKind(const char *Name, SolverSetKind &Out) {
  if (std::strcmp(Name, "dense") == 0) {
    Out = SolverSetKind::Dense;
    return true;
  }
  if (std::strcmp(Name, "adaptive") == 0) {
    Out = SolverSetKind::Adaptive;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Special members (accounting-aware)
//===----------------------------------------------------------------------===//

AdaptiveSet::AdaptiveSet(const AdaptiveSet &Other)
    : Rep(Other.Rep), DenseOnly(Other.DenseOnly), Num(Other.Num),
      Chunks(Other.Chunks), Words(Other.Words) {
  std::memcpy(SmallElems, Other.SmallElems, sizeof(SmallElems));
  // A fresh copy has no owner; the caller attaches one if it wants the
  // bytes booked.
}

AdaptiveSet &AdaptiveSet::operator=(const AdaptiveSet &Other) {
  if (this == &Other)
    return *this;
  size_t Before = heapBytes();
  Rep = Other.Rep;
  Num = Other.Num;
  ChunkHint = 0;
  std::memcpy(SmallElems, Other.SmallElems, sizeof(SmallElems));
  Chunks = Other.Chunks;
  Words = Other.Words;
  memAdjust(Before);
  // DenseOnly and Mem are owner properties: a pinned-dense destination
  // stays pinned even when copying from an adaptive source.
  if (DenseOnly && Rep != Tier::Dense)
    forceDense();
  return *this;
}

AdaptiveSet::AdaptiveSet(AdaptiveSet &&Other) noexcept
    : Rep(Other.Rep), DenseOnly(Other.DenseOnly), Num(Other.Num),
      Chunks(std::move(Other.Chunks)), Words(std::move(Other.Words)),
      Mem(Other.Mem) {
  std::memcpy(SmallElems, Other.SmallElems, sizeof(SmallElems));
  // Heap storage moved between two sets attached to the same block is
  // accounting-neutral; the moved-from set is left empty and unattached
  // so its destructor books nothing.
  Other.Num = 0;
  Other.Rep = Other.DenseOnly ? Tier::Dense : Tier::Small;
  Other.ChunkHint = 0;
  Other.Mem = nullptr;
}

AdaptiveSet &AdaptiveSet::operator=(AdaptiveSet &&Other) noexcept {
  if (this == &Other)
    return *this;
  size_t MyBefore = heapBytes();
  size_t OtherBefore = Other.heapBytes();
  Rep = Other.Rep;
  Num = Other.Num;
  ChunkHint = 0;
  std::memcpy(SmallElems, Other.SmallElems, sizeof(SmallElems));
  Chunks = std::move(Other.Chunks);
  Words = std::move(Other.Words);
  Other.Num = 0;
  Other.Rep = Other.DenseOnly ? Tier::Dense : Tier::Small;
  Other.ChunkHint = 0;
  memAdjust(MyBefore);       // This set now owns the moved storage.
  Other.memAdjust(OtherBefore); // The source owns (usually) nothing.
  if (DenseOnly && Rep != Tier::Dense)
    forceDense();
  return *this;
}

AdaptiveSet::~AdaptiveSet() {
  if (Mem != nullptr) {
    size_t Bytes = heapBytes();
    Mem->LiveBytes -= Bytes;
  }
}

void AdaptiveSet::attachMemoryStats(SetMemoryStats *M) {
  size_t Bytes = heapBytes();
  if (Mem != nullptr)
    Mem->LiveBytes -= Bytes;
  Mem = M;
  if (Mem != nullptr && Bytes != 0) {
    Mem->LiveBytes += Bytes;
    if (Mem->LiveBytes > Mem->PeakBytes)
      Mem->PeakBytes = Mem->LiveBytes;
  }
}

//===----------------------------------------------------------------------===//
// Membership
//===----------------------------------------------------------------------===//

bool AdaptiveSet::contains(uint32_t X) const {
  switch (Rep) {
  case Tier::Small:
    for (uint32_t I = 0; I != Num; ++I) {
      if (SmallElems[I] == X)
        return true;
      if (SmallElems[I] > X)
        return false; // Sorted: passed the slot.
    }
    return false;
  case Tier::Sparse: {
    uint32_t ChunkIdx = X / 128;
    size_t Pos = chunkLowerBound(ChunkIdx);
    if (Pos == Chunks.size() || Chunks[Pos].Idx != ChunkIdx)
      return false;
    ChunkHint = uint32_t(Pos);
    return (Chunks[Pos].W[(X / 64) & 1] >> (X % 64)) & 1;
  }
  case Tier::Dense: {
    size_t WordIdx = X / 64;
    if (WordIdx >= Words.size())
      return false;
    return (Words[WordIdx] >> (X % 64)) & 1;
  }
  }
  return false;
}

size_t AdaptiveSet::chunkLowerBound(uint32_t ChunkIdx) const {
  size_t N = Chunks.size();
  // MRU hint: repeated probes hit the same chunk, and ascending scans hit
  // the next one — both O(1) before falling back to binary search.
  if (ChunkHint < N) {
    uint32_t HintIdx = Chunks[ChunkHint].Idx;
    if (HintIdx == ChunkIdx)
      return ChunkHint;
    if (HintIdx < ChunkIdx &&
        (ChunkHint + 1 == N || Chunks[ChunkHint + 1].Idx >= ChunkIdx))
      return ChunkHint + 1;
  }
  size_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Chunks[Mid].Idx < ChunkIdx)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

//===----------------------------------------------------------------------===//
// Insertion / union core
//===----------------------------------------------------------------------===//

uint64_t AdaptiveSet::orWord(uint32_t WordIdx, uint64_t Bits) {
  if (Bits == 0)
    return 0;
  switch (Rep) {
  case Tier::Small:
    return orWordSmall(WordIdx, Bits);
  case Tier::Sparse:
    return orWordSparse(WordIdx, Bits);
  case Tier::Dense:
    return orWordDense(WordIdx, Bits);
  }
  return 0;
}

uint64_t AdaptiveSet::orWordSmall(uint32_t WordIdx, uint64_t Bits) {
  uint64_t Present = 0;
  for (uint32_t I = 0; I != Num; ++I)
    if (SmallElems[I] / 64 == WordIdx)
      Present |= uint64_t(1) << (SmallElems[I] % 64);
  uint64_t Added = Bits & ~Present;
  if (Added == 0)
    return 0;
  unsigned NumNew = unsigned(__builtin_popcountll(Added));
  if (Num + NumNew > SmallCapacity) {
    promoteToSparse();
    return orWordSparse(WordIdx, Bits);
  }
  uint64_t Rest = Added;
  while (Rest != 0) {
    uint32_t Value = WordIdx * 64 + unsigned(__builtin_ctzll(Rest));
    Rest &= Rest - 1;
    uint32_t Pos = Num;
    while (Pos > 0 && SmallElems[Pos - 1] > Value) {
      SmallElems[Pos] = SmallElems[Pos - 1];
      --Pos;
    }
    SmallElems[Pos] = Value;
    ++Num;
  }
  return Added;
}

uint64_t AdaptiveSet::orWordSparse(uint32_t WordIdx, uint64_t Bits) {
  uint32_t ChunkIdx = WordIdx / 2;
  unsigned Sub = WordIdx & 1;
  size_t Pos = chunkLowerBound(ChunkIdx);
  bool NewChunk = Pos == Chunks.size() || Chunks[Pos].Idx != ChunkIdx;
  if (NewChunk) {
    size_t Before = heapBytes();
    Chunks.insert(Chunks.begin() + Pos, Chunk{ChunkIdx, {0, 0}});
    memAdjust(Before);
  }
  ChunkHint = uint32_t(Pos);
  uint64_t Added = Bits & ~Chunks[Pos].W[Sub];
  if (Added == 0)
    return 0;
  Chunks[Pos].W[Sub] |= Added;
  Num += unsigned(__builtin_popcountll(Added));
  // Density check only when the chunk span changed. Promote once dense
  // storage for the same span would be no larger than the chunk list
  // (Chunk = 24 bytes vs 16 bytes per 128-bit dense span); the minimum
  // chunk count keeps genuinely tiny sets sparse so a later high id
  // cannot strand them in a huge word array.
  if (NewChunk && Chunks.size() >= MinChunksForDense &&
      Chunks.size() * sizeof(Chunk) >=
          size_t(Chunks.back().Idx + 1) * 2 * sizeof(uint64_t))
    promoteToDense(/*CountPromotion=*/true);
  return Added;
}

uint64_t AdaptiveSet::orWordDense(uint32_t WordIdx, uint64_t Bits) {
  if (WordIdx >= Words.size()) {
    size_t Before = heapBytes();
    Words.resize(size_t(WordIdx) + 1, 0);
    memAdjust(Before);
  }
  uint64_t Added = Bits & ~Words[WordIdx];
  if (Added == 0)
    return 0;
  Words[WordIdx] |= Added;
  Num += unsigned(__builtin_popcountll(Added));
  return Added;
}

//===----------------------------------------------------------------------===//
// Promotions
//===----------------------------------------------------------------------===//

void AdaptiveSet::promoteToSparse() {
  size_t Before = heapBytes();
  Chunk Staged[SmallCapacity];
  size_t NumChunks = 0;
  for (uint32_t I = 0; I != Num; ++I) {
    uint32_t Value = SmallElems[I];
    uint32_t ChunkIdx = Value / 128;
    if (NumChunks == 0 || Staged[NumChunks - 1].Idx != ChunkIdx)
      Staged[NumChunks++] = Chunk{ChunkIdx, {0, 0}};
    Staged[NumChunks - 1].W[(Value / 64) & 1] |= uint64_t(1) << (Value % 64);
  }
  Chunks.assign(Staged, Staged + NumChunks);
  Rep = Tier::Sparse;
  ChunkHint = 0;
  memAdjust(Before);
  if (Mem != nullptr)
    ++Mem->PromotionsToSparse;
}

void AdaptiveSet::promoteToDense(bool CountPromotion) {
  size_t Before = heapBytes();
  size_t NumWords = Chunks.empty() ? 0 : (size_t(Chunks.back().Idx) + 1) * 2;
  std::vector<uint64_t> Flat(NumWords, 0);
  for (const Chunk &C : Chunks) {
    Flat[size_t(C.Idx) * 2] = C.W[0];
    Flat[size_t(C.Idx) * 2 + 1] = C.W[1];
  }
  Words = std::move(Flat);
  std::vector<Chunk>().swap(Chunks); // Dense sets never pay for both tiers.
  Rep = Tier::Dense;
  ChunkHint = 0;
  memAdjust(Before);
  if (Mem != nullptr && CountPromotion)
    ++Mem->PromotionsToDense;
}

void AdaptiveSet::forceDense() {
  DenseOnly = true;
  if (Rep == Tier::Dense)
    return;
  if (Rep == Tier::Sparse) {
    promoteToDense(/*CountPromotion=*/false);
    return;
  }
  uint32_t Staged[SmallCapacity];
  uint32_t NumStaged = Num;
  std::memcpy(Staged, SmallElems, sizeof(Staged));
  Rep = Tier::Dense;
  Num = 0;
  for (uint32_t I = 0; I != NumStaged; ++I)
    orWordDense(Staged[I] / 64, uint64_t(1) << (Staged[I] % 64));
}

//===----------------------------------------------------------------------===//
// Whole-set operations
//===----------------------------------------------------------------------===//

bool AdaptiveSet::unionWith(const AdaptiveSet &Other) {
  if (this == &Other)
    return false;
  bool Changed = false;
  Other.forEachWord([this, &Changed](uint32_t WordIdx, uint64_t Word) {
    if (orWord(WordIdx, Word) != 0)
      Changed = true;
  });
  return Changed;
}

bool AdaptiveSet::unionWithRecordingNew(const AdaptiveSet &Other,
                                        AdaptiveSet &NewlyAdded) {
  if (this == &Other)
    return false;
  bool Changed = false;
  Other.forEachWord(
      [this, &NewlyAdded, &Changed](uint32_t WordIdx, uint64_t Word) {
        uint64_t Added = orWord(WordIdx, Word);
        if (Added != 0) {
          NewlyAdded.orWord(WordIdx, Added);
          Changed = true;
        }
      });
  return Changed;
}

void AdaptiveSet::clear() {
  size_t Before = heapBytes();
  Num = 0;
  ChunkHint = 0;
  Chunks.clear();
  Words.clear();
  Rep = DenseOnly ? Tier::Dense : Tier::Small;
  memAdjust(Before); // vector::clear keeps capacity; usually a no-op.
}

void AdaptiveSet::swap(AdaptiveSet &Other) {
  if (this == &Other)
    return;
  size_t MyBefore = heapBytes();
  size_t OtherBefore = Other.heapBytes();
  std::swap(Rep, Other.Rep);
  std::swap(DenseOnly, Other.DenseOnly);
  std::swap(Num, Other.Num);
  std::swap(ChunkHint, Other.ChunkHint);
  for (uint32_t I = 0; I != SmallCapacity; ++I)
    std::swap(SmallElems[I], Other.SmallElems[I]);
  Chunks.swap(Other.Chunks);
  Words.swap(Other.Words);
  if (Mem != Other.Mem) {
    memAdjust(MyBefore);
    Other.memAdjust(OtherBefore);
  }
}

std::vector<uint32_t> AdaptiveSet::toVector() const {
  std::vector<uint32_t> Out;
  Out.reserve(Num);
  forEach([&Out](uint32_t X) { Out.push_back(X); });
  return Out;
}

bool jsai::operator==(const AdaptiveSet &A, const AdaptiveSet &B) {
  if (A.Num != B.Num)
    return false;
  if (A.Num == 0)
    return true;
  if (A.Rep == B.Rep) {
    switch (A.Rep) {
    case AdaptiveSet::Tier::Small:
      return std::memcmp(A.SmallElems, B.SmallElems,
                         A.Num * sizeof(uint32_t)) == 0;
    case AdaptiveSet::Tier::Sparse: {
      // Chunk lists are content-determined (sorted, never all-zero), so
      // field-wise comparison is membership comparison. memcmp would read
      // padding bytes.
      if (A.Chunks.size() != B.Chunks.size())
        return false;
      for (size_t I = 0, E = A.Chunks.size(); I != E; ++I)
        if (A.Chunks[I].Idx != B.Chunks[I].Idx ||
            A.Chunks[I].W[0] != B.Chunks[I].W[0] ||
            A.Chunks[I].W[1] != B.Chunks[I].W[1])
          return false;
      return true;
    }
    case AdaptiveSet::Tier::Dense: {
      size_t Common = std::min(A.Words.size(), B.Words.size());
      for (size_t I = 0; I != Common; ++I)
        if (A.Words[I] != B.Words[I])
          return false;
      for (size_t I = Common; I < A.Words.size(); ++I)
        if (A.Words[I] != 0)
          return false;
      for (size_t I = Common; I < B.Words.size(); ++I)
        if (B.Words[I] != 0)
          return false;
      return true;
    }
    }
  }
  // Cross-tier: equal counts, so subset implies equality.
  return A.forEachWhile([&B](uint32_t X) { return B.contains(X); });
}

bool jsai::operator==(const AdaptiveSet &A, const BitSet &B) {
  if (A.count() != B.count())
    return false;
  return A.forEachWhile([&B](uint32_t X) { return B.contains(X); });
}
