//===- JsNumber.cpp -------------------------------------------------------===//

#include "support/JsNumber.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>

using namespace jsai;

//===----------------------------------------------------------------------===//
// ToString(Number)
//===----------------------------------------------------------------------===//

std::string jsai::jsNumberToString(double Value) {
  if (std::isnan(Value))
    return "NaN";
  if (std::isinf(Value))
    return Value > 0 ? "Infinity" : "-Infinity";
  if (Value == 0)
    return "0"; // Both zeros: ToString(-0) is "0" (Number::toString step 2).
  if (std::signbit(Value))
    return "-" + jsNumberToString(-Value);
  // Integers in the exactly-representable range print without a decimal
  // point or exponent, matching ECMAScript for all array indices.
  if (Value == std::floor(Value) && Value < 9.007199254740992e15)
    return std::to_string(int64_t(Value));

  // General case (Number::toString, 6.1.6.1.20): obtain the shortest
  // round-tripping digit string s with 10^(n-1) <= s * 10^(n-k) < 10^n and
  // lay it out by the magnitude class of n. to_chars' shortest scientific
  // form provides exactly (s, n): "d[.ddd]e±x" means s = digits, n = x + 1.
  char Buf[64];
  auto [Ptr, Ec] =
      std::to_chars(Buf, Buf + sizeof(Buf), Value, std::chars_format::scientific);
  (void)Ec;
  std::string Sci(Buf, Ptr);
  size_t EPos = Sci.find('e');
  assert(EPos != std::string::npos && "scientific form always has an exponent");
  std::string Digits = Sci.substr(0, EPos);
  if (size_t Dot = Digits.find('.'); Dot != std::string::npos)
    Digits.erase(Dot, 1);
  int N = std::atoi(Sci.c_str() + EPos + 1) + 1;
  int K = int(Digits.size());

  if (K <= N && N <= 21)
    return Digits + std::string(size_t(N - K), '0');
  if (0 < N && N <= 21)
    return Digits.substr(0, size_t(N)) + "." + Digits.substr(size_t(N));
  if (-6 < N && N <= 0)
    return "0." + std::string(size_t(-N), '0') + Digits;
  // Exponential form: d[.ddd]e±(n-1), exponent printed without padding.
  std::string Out(1, Digits[0]);
  if (K > 1)
    Out += "." + Digits.substr(1);
  int Exp = N - 1;
  Out += Exp >= 0 ? "e+" : "e-";
  Out += std::to_string(Exp >= 0 ? Exp : -Exp);
  return Out;
}

//===----------------------------------------------------------------------===//
// StringToNumber
//===----------------------------------------------------------------------===//

namespace {

bool isStrWhiteSpace(char C) {
  return C == ' ' || C == '\t' || C == '\v' || C == '\f' || C == '\r' ||
         C == '\n';
}

int digitValue(char C, unsigned Radix) {
  unsigned V;
  if (C >= '0' && C <= '9')
    V = unsigned(C - '0');
  else if (C >= 'a' && C <= 'f')
    V = unsigned(C - 'a') + 10;
  else if (C >= 'A' && C <= 'F')
    V = unsigned(C - 'A') + 10;
  else
    return -1;
  return V < Radix ? int(V) : -1;
}

/// Value of a NonDecimalIntegerLiteral's digits (text after the 0x/0o/0b
/// prefix). Exact up to 64 bits; wider literals continue accumulating in
/// double (an approximation of the spec's exact-then-round semantics that
/// only matters beyond 2^64). \returns NaN unless every character is a
/// digit of \p Radix and there is at least one.
double parseRadixDigits(const std::string &S, size_t Begin, unsigned Radix) {
  if (Begin >= S.size())
    return std::nan("");
  unsigned long long Acc = 0;
  bool Wide = false;
  double DAcc = 0;
  for (size_t I = Begin; I != S.size(); ++I) {
    int D = digitValue(S[I], Radix);
    if (D < 0)
      return std::nan("");
    if (!Wide) {
      if (Acc > (~0ULL - (unsigned long long)D) / Radix) {
        Wide = true;
        DAcc = double(Acc);
      } else {
        Acc = Acc * Radix + (unsigned long long)D;
        continue;
      }
    }
    DAcc = DAcc * Radix + D;
  }
  return Wide ? DAcc : double(Acc);
}

/// True when [Begin, S.size()) matches StrUnsignedDecimalLiteral:
///   DecimalDigits '.' DecimalDigits? ExponentPart?
/// | '.' DecimalDigits ExponentPart?
/// | DecimalDigits ExponentPart?
/// This is what rejects strtod's C extensions: "inf", "nan", "infinity",
/// and hex-float ("0x1p4" never reaches here; "1p4" fails on 'p').
bool matchesDecimalLiteral(const std::string &S, size_t Begin) {
  size_t I = Begin;
  size_t IntDigits = 0;
  while (I != S.size() && S[I] >= '0' && S[I] <= '9') {
    ++I;
    ++IntDigits;
  }
  size_t FracDigits = 0;
  if (I != S.size() && S[I] == '.') {
    ++I;
    while (I != S.size() && S[I] >= '0' && S[I] <= '9') {
      ++I;
      ++FracDigits;
    }
  }
  if (IntDigits == 0 && FracDigits == 0)
    return false; // A lone '.', sign, or exponent is not a number.
  if (I != S.size() && (S[I] == 'e' || S[I] == 'E')) {
    ++I;
    if (I != S.size() && (S[I] == '+' || S[I] == '-'))
      ++I;
    if (I == S.size() || S[I] < '0' || S[I] > '9')
      return false; // ExponentPart requires at least one digit.
    while (I != S.size() && S[I] >= '0' && S[I] <= '9')
      ++I;
  }
  return I == S.size();
}

} // namespace

double jsai::jsStringToNumber(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin != End && isStrWhiteSpace(S[Begin]))
    ++Begin;
  while (End != Begin && isStrWhiteSpace(S[End - 1]))
    --End;
  if (Begin == End)
    return 0; // Whitespace-only and empty strings convert to +0.
  std::string Trimmed = S.substr(Begin, End - Begin);

  // NonDecimalIntegerLiteral: 0x / 0o / 0b (ES2015). No sign is permitted
  // before these ("-0x10" is NaN, unlike strtol semantics).
  if (Trimmed.size() > 1 && Trimmed[0] == '0') {
    char P = Trimmed[1];
    if (P == 'x' || P == 'X')
      return parseRadixDigits(Trimmed, 2, 16);
    if (P == 'o' || P == 'O')
      return parseRadixDigits(Trimmed, 2, 8);
    if (P == 'b' || P == 'B')
      return parseRadixDigits(Trimmed, 2, 2);
  }

  // StrDecimalLiteral: optional sign, then "Infinity" (exact spelling) or
  // an unsigned decimal literal.
  size_t Unsigned = 0;
  double Sign = 1;
  if (Trimmed[0] == '+' || Trimmed[0] == '-') {
    Unsigned = 1;
    if (Trimmed[0] == '-')
      Sign = -1;
  }
  if (Trimmed.compare(Unsigned, std::string::npos, "Infinity") == 0)
    return Sign * HUGE_VAL;
  if (!matchesDecimalLiteral(Trimmed, Unsigned))
    return std::nan("");
  // The text is now a strict subset of strtod's grammar, so strtod performs
  // only the correctly rounded decimal conversion.
  return std::strtod(Trimmed.c_str(), nullptr);
}
