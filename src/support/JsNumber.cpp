//===- JsNumber.cpp -------------------------------------------------------===//

#include "support/JsNumber.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>

using namespace jsai;

std::string jsai::jsNumberToString(double Value) {
  if (std::isnan(Value))
    return "NaN";
  if (std::isinf(Value))
    return Value > 0 ? "Infinity" : "-Infinity";
  if (Value == 0)
    return std::signbit(Value) ? "0" : "0";
  // Integers in the exactly-representable range print without a decimal
  // point or exponent, matching ECMAScript for all array indices.
  if (Value == std::floor(Value) && std::fabs(Value) < 9.007199254740992e15)
    return std::to_string(int64_t(Value));
  char Buf[64];
  auto [Ptr, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), Value);
  (void)Ec;
  return std::string(Buf, Ptr);
}

double jsai::jsStringToNumber(const std::string &S) {
  size_t Begin = S.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return 0; // Whitespace-only and empty strings convert to +0.
  size_t End = S.find_last_not_of(" \t\r\n") + 1;
  std::string Trimmed = S.substr(Begin, End - Begin);
  if (Trimmed.size() > 2 && Trimmed[0] == '0' &&
      (Trimmed[1] == 'x' || Trimmed[1] == 'X')) {
    char *EndPtr = nullptr;
    unsigned long long Hex = std::strtoull(Trimmed.c_str() + 2, &EndPtr, 16);
    if (*EndPtr != '\0')
      return std::nan("");
    return double(Hex);
  }
  char *EndPtr = nullptr;
  double Result = std::strtod(Trimmed.c_str(), &EndPtr);
  if (EndPtr == Trimmed.c_str() || *EndPtr != '\0')
    return std::nan("");
  return Result;
}
