//===- AdaptiveSet.h - Three-tier adaptive points-to set --------*- C++ -*-===//
///
/// \file
/// The solver's production set representation: a set of dense uint32 ids
/// (tokens) that adapts its storage to its population, because points-to
/// sets in subset-constraint solving are overwhelmingly tiny while a few
/// grow huge (JSAI's lattice-representation lesson):
///
///  - **Small**: up to 8 members in an inline sorted array — no heap
///    allocation at all. The common case for variables that ever point to
///    one or two tokens.
///  - **Sparse**: a sorted vector of 128-bit chunks keyed by chunk index
///    (LLVM-SparseBitVector-style, but contiguous for cache locality).
///    Absent ranges cost nothing; unions touch only populated chunks.
///  - **Dense**: the classic word array (exactly BitSet's layout), entered
///    only when the chunk list stops being sparse — at >= 2/3 chunk-span
///    occupancy dense storage is no larger and unions are pure word ORs.
///
/// All tiers preserve deterministic ascending `forEach` iteration and a
/// word-parallel union path (`orWord` merges 64 members at a time on every
/// tier), so the solver's batched-delta flush works unchanged. `count()`
/// is O(1) via an incrementally maintained population counter; `empty()`
/// never touches storage.
///
/// Memory accounting: a set can be attached to a SetMemoryStats block
/// (one per solver); every heap capacity change is booked there
/// byte-accurately, giving live/peak set bytes and tier-promotion counts
/// for free. Unattached sets skip the bookkeeping.
///
/// The dense `BitSet` stays as the differential-testing reference;
/// `forceDense()` pins a set to the dense tier from the start, which is
/// how the `--solver-set=dense` ablation reproduces the old behavior.
///
/// Not thread-safe: `contains()` maintains a mutable MRU chunk hint, so
/// even concurrent reads of one set race (each solver is single-threaded;
/// the corpus driver gives every job its own solver). Concurrent readers
/// that only need word lookups (the parallel solver's precompute phase)
/// must go through `WordCursor`, which keeps its position in the cursor
/// itself and never touches the set.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_ADAPTIVESET_H
#define JSAI_SUPPORT_ADAPTIVESET_H

#include "support/BitSet.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsai {

/// Which set representation a solver uses for its points-to machinery.
/// Dense keeps the pre-adaptive word-array behavior (the ablation
/// reference); Adaptive is the tiered production representation.
enum class SolverSetKind : uint8_t {
  Adaptive,
  Dense,
};

/// Process-wide default representation for newly constructed solvers.
/// Initialized once from the JSAI_SOLVER_SET environment variable
/// ("dense" or "adaptive"; anything else means Adaptive) so the golden-
/// metrics benches can be swept across representations without per-binary
/// flag plumbing; the CLI's --solver-set= overrides it at startup. Set it
/// before spawning workers — reads after that are unsynchronized.
SolverSetKind defaultSolverSetKind();
void setDefaultSolverSetKind(SolverSetKind K);
const char *solverSetKindName(SolverSetKind K);
/// Parses "dense" / "adaptive". \returns false on anything else.
bool parseSolverSetKind(const char *Name, SolverSetKind &Out);

/// Byte-accurate accounting block shared by every set of one owner
/// (solver). Live/peak track heap capacity bytes only: the inline small
/// tier is the point of the design — its sets cost zero accountable
/// bytes, exactly the saving being measured.
struct SetMemoryStats {
  uint64_t LiveBytes = 0;
  uint64_t PeakBytes = 0;
  uint64_t PromotionsToSparse = 0;
  uint64_t PromotionsToDense = 0;
};

/// Adaptive set over [0, 2^32) member ids. See the file comment.
class AdaptiveSet {
public:
  enum class Tier : uint8_t { Small, Sparse, Dense };
  static constexpr uint32_t SmallCapacity = 8;
  /// Sparse sets never go dense below this chunk count, however dense their
  /// span: a handful of chunks costs tens of bytes either way, but an early
  /// dense promotion is irreversible and a later high id would strand the
  /// set in a huge word array.
  static constexpr size_t MinChunksForDense = 4;

  AdaptiveSet() = default;
  AdaptiveSet(const AdaptiveSet &Other);
  /// Copies membership (and representation) but keeps this set's
  /// accounting attachment: the stats block belongs to the owner, not to
  /// the value.
  AdaptiveSet &operator=(const AdaptiveSet &Other);
  AdaptiveSet(AdaptiveSet &&Other) noexcept;
  AdaptiveSet &operator=(AdaptiveSet &&Other) noexcept;
  ~AdaptiveSet();

  /// Attaches this set to \p M (detaching from any previous block) and
  /// books its current heap bytes there. Pass nullptr to detach.
  void attachMemoryStats(SetMemoryStats *M);

  /// Pins this set to the dense tier, now and after clear() — the
  /// --solver-set=dense ablation. Current members are migrated.
  void forceDense();

  Tier tier() const { return Rep; }

  /// Heap bytes currently owned (capacity, not size — capacity is what
  /// the allocator charges us for). O(1).
  size_t heapBytes() const {
    return Chunks.capacity() * sizeof(Chunk) +
           Words.capacity() * sizeof(uint64_t);
  }

  /// Inserts \p X. \returns true if it was newly inserted.
  bool insert(uint32_t X) {
    return orWord(X / 64, uint64_t(1) << (X % 64)) != 0;
  }

  /// ORs \p Bits into word \p WordIdx, handling tier dispatch, promotion,
  /// accounting, and the cached count. \returns the bits actually added.
  /// The word-parallel insertion primitive every union path is built on.
  uint64_t orWord(uint32_t WordIdx, uint64_t Bits);

  bool contains(uint32_t X) const;

  /// Unions \p Other into this set. \returns true if this set changed.
  bool unionWith(const AdaptiveSet &Other);

  /// Unions \p Other into this set, recording every newly inserted member
  /// in \p NewlyAdded. Word-parallel on every tier pairing. \returns true
  /// if this set changed.
  bool unionWithRecordingNew(const AdaptiveSet &Other, AdaptiveSet &NewlyAdded);

  /// Number of members — O(1), maintained incrementally by every insert
  /// and union path.
  size_t count() const { return Num; }

  /// O(1) and allocation-free.
  bool empty() const { return Num == 0; }

  /// Removes all members. Keeps heap capacity for reuse (the solver
  /// recycles delta scratch sets), drops back to the small tier unless
  /// pinned dense.
  void clear();

  /// Swaps membership and representation; each set keeps its own
  /// accounting attachment (byte totals are re-booked when the blocks
  /// differ).
  void swap(AdaptiveSet &Other);

  /// Invokes \p Fn for every member in ascending order — identical order
  /// on every tier, so representation can never leak into analysis
  /// results.
  template <typename CallbackT> void forEach(CallbackT Fn) const {
    forEachWord([&Fn](uint32_t WordIdx, uint64_t Word) {
      while (Word != 0) {
        unsigned Bit = __builtin_ctzll(Word);
        Fn(uint32_t(WordIdx * 64 + Bit));
        Word &= Word - 1;
      }
    });
  }

  /// Invokes \p Fn over (wordIndex, nonzeroWord) pairs in ascending word
  /// order — the word-parallel iteration unions are built on.
  template <typename CallbackT> void forEachWord(CallbackT Fn) const {
    switch (Rep) {
    case Tier::Small:
      for (uint32_t I = 0; I != Num;) {
        uint32_t WordIdx = SmallElems[I] / 64;
        uint64_t Word = 0;
        // Members are sorted, so one word's members are contiguous.
        for (; I != Num && SmallElems[I] / 64 == WordIdx; ++I)
          Word |= uint64_t(1) << (SmallElems[I] % 64);
        Fn(WordIdx, Word);
      }
      break;
    case Tier::Sparse:
      for (const Chunk &C : Chunks) {
        if (C.W[0] != 0)
          Fn(C.Idx * 2, C.W[0]);
        if (C.W[1] != 0)
          Fn(C.Idx * 2 + 1, C.W[1]);
      }
      break;
    case Tier::Dense:
      for (size_t I = 0, E = Words.size(); I != E; ++I)
        if (Words[I] != 0)
          Fn(uint32_t(I), Words[I]);
      break;
    }
  }

  /// Ascending iteration with early exit: stops (returning false) as soon
  /// as \p Fn returns false.
  template <typename CallbackT> bool forEachWhile(CallbackT Fn) const {
    switch (Rep) {
    case Tier::Small:
      for (uint32_t I = 0; I != Num; ++I)
        if (!Fn(SmallElems[I]))
          return false;
      return true;
    case Tier::Sparse:
      for (const Chunk &C : Chunks)
        for (unsigned Sub = 0; Sub != 2; ++Sub) {
          uint64_t Word = C.W[Sub];
          while (Word != 0) {
            unsigned Bit = __builtin_ctzll(Word);
            if (!Fn(uint32_t((C.Idx * 2 + Sub) * 64 + Bit)))
              return false;
            Word &= Word - 1;
          }
        }
      return true;
    case Tier::Dense:
      for (size_t I = 0, E = Words.size(); I != E; ++I) {
        uint64_t Word = Words[I];
        while (Word != 0) {
          unsigned Bit = __builtin_ctzll(Word);
          if (!Fn(uint32_t(I * 64 + Bit)))
            return false;
          Word &= Word - 1;
        }
      }
      return true;
    }
    return true;
  }

  /// Collects members in ascending order.
  std::vector<uint32_t> toVector() const;

  class WordCursor;

  friend bool operator==(const AdaptiveSet &A, const AdaptiveSet &B);

private:
  /// One 128-bit span of the sparse tier. Idx is the chunk index
  /// (member / 128); chunks are kept sorted by Idx and are never
  /// all-zero.
  struct Chunk {
    uint32_t Idx;
    uint64_t W[2];
  };

  uint64_t orWordSmall(uint32_t WordIdx, uint64_t Bits);
  uint64_t orWordSparse(uint32_t WordIdx, uint64_t Bits);
  uint64_t orWordDense(uint32_t WordIdx, uint64_t Bits);

  void promoteToSparse();
  void promoteToDense(bool CountPromotion);
  /// Position of the first chunk with Idx >= \p ChunkIdx (MRU-hinted).
  size_t chunkLowerBound(uint32_t ChunkIdx) const;

  /// Books the capacity delta since \p BytesBefore into the attached
  /// stats block.
  void memAdjust(size_t BytesBefore) {
    if (Mem == nullptr)
      return;
    size_t After = heapBytes();
    if (After > BytesBefore) {
      Mem->LiveBytes += After - BytesBefore;
      if (Mem->LiveBytes > Mem->PeakBytes)
        Mem->PeakBytes = Mem->LiveBytes;
    } else if (After < BytesBefore) {
      Mem->LiveBytes -= BytesBefore - After;
    }
  }

  Tier Rep = Tier::Small;
  /// Pinned to the dense tier (ablation mode); clear() stays dense.
  bool DenseOnly = false;
  /// Cached population (the O(1) count()).
  uint32_t Num = 0;
  /// MRU chunk position for contains/insert locality on the sparse tier.
  mutable uint32_t ChunkHint = 0;
  uint32_t SmallElems[SmallCapacity];
  std::vector<Chunk> Chunks;
  std::vector<uint64_t> Words;
  SetMemoryStats *Mem = nullptr;
};

/// Pure ascending word lookup over a set that other threads may also be
/// reading. Unlike `contains()` (which updates the set's mutable MRU chunk
/// hint) the cursor keeps its scan position in itself, so any number of
/// cursors can read one set concurrently — provided no thread mutates it.
/// `wordAt` must be called with non-decreasing word indices; the sparse
/// tier advances a chunk position monotonically, making a full ascending
/// sweep O(chunks) amortized instead of O(chunks log chunks).
class AdaptiveSet::WordCursor {
public:
  explicit WordCursor(const AdaptiveSet &S) : S(S) {}

  /// 64-bit membership word \p WordIdx (members [WordIdx*64, WordIdx*64+64)).
  uint64_t wordAt(uint32_t WordIdx) {
    switch (S.Rep) {
    case Tier::Small: {
      uint64_t Word = 0;
      for (uint32_t I = 0; I != S.Num; ++I)
        if (S.SmallElems[I] / 64 == WordIdx)
          Word |= uint64_t(1) << (S.SmallElems[I] % 64);
      return Word;
    }
    case Tier::Sparse: {
      uint32_t ChunkIdx = WordIdx / 2;
      while (Pos != S.Chunks.size() && S.Chunks[Pos].Idx < ChunkIdx)
        ++Pos;
      if (Pos == S.Chunks.size() || S.Chunks[Pos].Idx != ChunkIdx)
        return 0;
      return S.Chunks[Pos].W[WordIdx & 1];
    }
    case Tier::Dense:
      return WordIdx < S.Words.size() ? S.Words[WordIdx] : 0;
    }
    return 0;
  }

private:
  const AdaptiveSet &S;
  size_t Pos = 0;
};

/// Membership equality across any tier pairing.
bool operator==(const AdaptiveSet &A, const AdaptiveSet &B);

/// Cross-representation membership equality (differential tests compare
/// the production set against the dense BitSet reference).
bool operator==(const AdaptiveSet &A, const BitSet &B);
inline bool operator==(const BitSet &A, const AdaptiveSet &B) { return B == A; }

} // namespace jsai

#endif // JSAI_SUPPORT_ADAPTIVESET_H
