//===- Cancellation.cpp ---------------------------------------------------===//

#include "support/Cancellation.h"

using namespace jsai;

void CancellationToken::arm(double Seconds) {
  Deadline = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Seconds));
  Armed = true;
  PollsUntilCheck = 0; // First poll reads the clock.
  Latched.store(false, std::memory_order_relaxed);
}

void CancellationToken::disarm() {
  Armed = false;
  Latched.store(false, std::memory_order_relaxed);
}

bool CancellationToken::expired() {
  // The latch and the parent chain are consulted before the Armed check so
  // cancelNow() (and a latched parent) interrupt phases that never armed a
  // deadline of their own.
  if (Latched.load(std::memory_order_relaxed))
    return true;
  if (const CancellationToken *P = Parent.load(std::memory_order_relaxed);
      P && P->cancelled()) {
    Latched.store(true, std::memory_order_relaxed);
    return true;
  }
  if (!Armed)
    return false;
  if (PollsUntilCheck-- != 0)
    return false;
  PollsUntilCheck = PollStride;
  if (std::chrono::steady_clock::now() < Deadline)
    return false;
  Latched.store(true, std::memory_order_relaxed);
  return true;
}
