//===- Version.h - Build identity -------------------------------*- C++ -*-===//
///
/// \file
/// The jsai version string. Bumped whenever the analysis semantics, the
/// report schema, or the serve protocol change shape. Clients of the
/// analysis service compare this (plus the run-config fingerprint) against
/// the daemon's handshake and refuse to talk to a mismatched build, and the
/// run manifest embeds it so archived reports are self-describing.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_VERSION_H
#define JSAI_SUPPORT_VERSION_H

namespace jsai {

/// Semantic-ish version of the analyzer. Constant per build, so it is safe
/// to emit in default (non-timings) reports without breaking byte-identity
/// across runs of the same binary.
inline constexpr const char *JsaiVersion = "0.7.0";

} // namespace jsai

#endif // JSAI_SUPPORT_VERSION_H
