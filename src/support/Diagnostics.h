//===- Diagnostics.h - Diagnostic collection --------------------*- C++ -*-===//
///
/// \file
/// Diagnostic accumulation for the frontend. The library never throws;
/// parse/analysis entry points take a DiagnosticEngine and callers inspect
/// it afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_DIAGNOSTICS_H
#define JSAI_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace jsai {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics produced by the lexer, parser, and analyses.
///
/// Not thread-safe: one engine per analysis job. Parallel driver workers
/// each construct their own.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  size_t errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic as "<severity>: <file:line:col>: <message>",
  /// one per line.
  std::string render(const FileTable &Files) const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

} // namespace jsai

#endif // JSAI_SUPPORT_DIAGNOSTICS_H
