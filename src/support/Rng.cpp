//===- Rng.cpp ------------------------------------------------------------===//
// Rng is header-only; this file anchors the translation unit.

#include "support/Rng.h"
