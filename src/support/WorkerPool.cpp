//===- WorkerPool.cpp -----------------------------------------------------===//

#include "support/WorkerPool.h"

using namespace jsai;

WorkerPool::WorkerPool(size_t NumThreads) {
  Workers.reserve(NumThreads);
  for (size_t I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stop = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void WorkerPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t)> *F;
    size_t Limit;
    {
      std::unique_lock<std::mutex> L(M);
      WakeCV.wait(L,
                  [&] { return Stop || Generation != SeenGeneration; });
      if (Stop)
        return;
      SeenGeneration = Generation;
      F = Fn;
      Limit = Count;
    }
    size_t I;
    while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < Limit)
      (*F)(I);
    {
      std::lock_guard<std::mutex> L(M);
      --Running;
    }
    DoneCV.notify_one();
  }
}

void WorkerPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &F) {
  if (Workers.empty() || N <= 1) {
    for (size_t I = 0; I != N; ++I)
      F(I);
    return;
  }
  {
    std::lock_guard<std::mutex> L(M);
    Fn = &F;
    Count = N;
    Next.store(0, std::memory_order_relaxed);
    Running = Workers.size();
    ++Generation;
  }
  WakeCV.notify_all();
  size_t I;
  while ((I = Next.fetch_add(1, std::memory_order_relaxed)) < N)
    F(I);
  std::unique_lock<std::mutex> L(M);
  DoneCV.wait(L, [&] { return Running == 0; });
}
