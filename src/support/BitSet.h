//===- BitSet.h - Growable dense bit set ------------------------*- C++ -*-===//
///
/// \file
/// A growable dense bit set used for points-to sets in the subset-constraint
/// solver. Abstract tokens are dense integer ids, so a word-packed bit set
/// gives fast union (the solver's hot operation) and deterministic ascending
/// iteration.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_BITSET_H
#define JSAI_SUPPORT_BITSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jsai {

/// Dense bit set over [0, +inf), growing on demand.
class BitSet {
public:
  /// Inserts \p Index. \returns true if it was newly inserted.
  bool insert(uint32_t Index);

  bool contains(uint32_t Index) const;

  /// Unions \p Other into this set. \returns true if this set changed.
  bool unionWith(const BitSet &Other);

  /// Unions \p Other into this set, recording every newly inserted bit in
  /// \p NewlyAdded (bits already present are not recorded). \returns true if
  /// this set changed. The solver uses this to compute exact propagation
  /// deltas in one word-parallel pass.
  bool unionWithRecordingNew(const BitSet &Other, BitSet &NewlyAdded);

  /// Number of set bits.
  size_t count() const;

  /// True when no bit is set (early-exits; does not count).
  bool empty() const {
    for (uint64_t Word : Words)
      if (Word != 0)
        return false;
    return true;
  }

  /// Removes all bits, keeping capacity.
  void clear() { Words.clear(); }

  void swap(BitSet &Other) { Words.swap(Other.Words); }

  /// Invokes \p Fn for every member in ascending order.
  template <typename CallbackT> void forEach(CallbackT Fn) const {
    for (size_t WordIdx = 0, E = Words.size(); WordIdx != E; ++WordIdx) {
      uint64_t Word = Words[WordIdx];
      while (Word != 0) {
        unsigned Bit = __builtin_ctzll(Word);
        Fn(uint32_t(WordIdx * 64 + Bit));
        Word &= Word - 1;
      }
    }
  }

  /// Collects members in ascending order.
  std::vector<uint32_t> toVector() const;

  friend bool operator==(const BitSet &A, const BitSet &B);

private:
  /// Word count ignoring trailing zero words — the membership-relevant
  /// size. swap()/clear() paths can leave zero high words behind; every
  /// size-dependent operation must use this, not Words.size(), so stale
  /// capacity never propagates through unions.
  size_t effectiveWords() const {
    size_t E = Words.size();
    while (E > 0 && Words[E - 1] == 0)
      --E;
    return E;
  }

  std::vector<uint64_t> Words;
};

/// Membership equality (trailing zero words are ignored).
bool operator==(const BitSet &A, const BitSet &B);

} // namespace jsai

#endif // JSAI_SUPPORT_BITSET_H
