//===- CompilerHints.h - portable codegen attributes ------------*- C++ -*-===//
///
/// \file
/// JSAI_NOINLINE keeps cold slow paths (unwinding, dictionary-mode property
/// fallbacks, IC-miss tails) out of the interpreter dispatch loops so the
/// hot switch stays compact in the instruction cache. Advisory only: a
/// function marked noinline must be correct either way.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_COMPILERHINTS_H
#define JSAI_SUPPORT_COMPILERHINTS_H

#if defined(__GNUC__) || defined(__clang__)
#define JSAI_NOINLINE __attribute__((noinline))
#elif defined(_MSC_VER)
#define JSAI_NOINLINE __declspec(noinline)
#else
#define JSAI_NOINLINE
#endif

#endif // JSAI_SUPPORT_COMPILERHINTS_H
