//===- SourceLoc.h - Source locations and the file table ------*- C++ -*-===//
//
// Part of the jsai project: a reproduction of "Reducing Static Analysis
// Unsoundness with Approximate Interpretation" (PLDI 2024).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations (file, line, column). A SourceLoc is the shared currency
/// between the dynamic pre-analysis and the static analysis: allocation sites
/// are identified by the SourceLoc of the object construction or function
/// definition, exactly as the paper's `loc` map and allocation-site tokens.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_SOURCELOC_H
#define JSAI_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

/// Identifier of a source file registered in a FileTable.
using FileId = uint32_t;

/// An invalid file id, used by SourceLoc::invalid().
inline constexpr FileId InvalidFileId = ~FileId(0);

/// A (file, line, column) source position. Lines and columns are 1-based;
/// 0 means "unknown".
struct SourceLoc {
  FileId File = InvalidFileId;
  uint32_t Line = 0;
  uint32_t Col = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(FileId File, uint32_t Line, uint32_t Col)
      : File(File), Line(Line), Col(Col) {}

  /// \returns a location that compares unequal to every real location.
  static constexpr SourceLoc invalid() { return SourceLoc(); }

  bool isValid() const { return File != InvalidFileId; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.File == B.File && A.Line == B.Line && A.Col == B.Col;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }
  friend bool operator<(const SourceLoc &A, const SourceLoc &B) {
    if (A.File != B.File)
      return A.File < B.File;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    return A.Col < B.Col;
  }

  /// Packs the location into a single integer usable as a hash-map key.
  uint64_t key() const {
    return (uint64_t(File) << 40) | (uint64_t(Line) << 16) | uint64_t(Col);
  }
};

/// Hash functor so SourceLoc can key unordered containers.
struct SourceLocHash {
  size_t operator()(const SourceLoc &L) const {
    return std::hash<uint64_t>()(L.key());
  }
};

/// Registry of source file names. FileIds are dense indices into the table,
/// so iteration over files is deterministic.
class FileTable {
public:
  /// Registers \p Name (idempotent) and returns its id.
  FileId add(const std::string &Name);

  /// \returns the id of \p Name, or InvalidFileId if never registered.
  FileId lookup(const std::string &Name) const;

  /// \returns the registered name for \p File. \p File must be valid.
  const std::string &name(FileId File) const;

  size_t size() const { return Names.size(); }

  /// Renders \p Loc as "file:line:col" ("<unknown>" for invalid locations).
  std::string format(const SourceLoc &Loc) const;

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, FileId> Index;
};

} // namespace jsai

#endif // JSAI_SUPPORT_SOURCELOC_H
