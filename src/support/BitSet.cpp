//===- BitSet.cpp ---------------------------------------------------------===//

#include "support/BitSet.h"

#include <algorithm>

using namespace jsai;

bool BitSet::insert(uint32_t Index) {
  size_t WordIdx = Index / 64;
  uint64_t Mask = uint64_t(1) << (Index % 64);
  if (WordIdx >= Words.size())
    Words.resize(WordIdx + 1, 0);
  if (Words[WordIdx] & Mask)
    return false;
  Words[WordIdx] |= Mask;
  return true;
}

bool BitSet::contains(uint32_t Index) const {
  size_t WordIdx = Index / 64;
  if (WordIdx >= Words.size())
    return false;
  return (Words[WordIdx] >> (Index % 64)) & 1;
}

bool BitSet::unionWith(const BitSet &Other) {
  // Size to Other's *effective* word count: trailing zero words (left
  // behind by swap()/clear()/union sequences) must not propagate, or
  // repeated unions inflate every set they touch with dead storage.
  size_t E = Other.effectiveWords();
  if (E > Words.size())
    Words.resize(E, 0);
  bool Changed = false;
  for (size_t I = 0; I != E; ++I) {
    uint64_t Merged = Words[I] | Other.Words[I];
    if (Merged != Words[I]) {
      Words[I] = Merged;
      Changed = true;
    }
  }
  return Changed;
}

bool BitSet::unionWithRecordingNew(const BitSet &Other, BitSet &NewlyAdded) {
  size_t E = Other.effectiveWords();
  if (E > Words.size())
    Words.resize(E, 0);
  bool Changed = false;
  for (size_t I = 0; I != E; ++I) {
    uint64_t Added = Other.Words[I] & ~Words[I];
    if (Added == 0)
      continue;
    Words[I] |= Added;
    if (NewlyAdded.Words.size() <= I)
      NewlyAdded.Words.resize(I + 1, 0);
    NewlyAdded.Words[I] |= Added;
    Changed = true;
  }
  return Changed;
}

size_t BitSet::count() const {
  size_t Total = 0;
  for (uint64_t Word : Words)
    Total += size_t(__builtin_popcountll(Word));
  return Total;
}

std::vector<uint32_t> BitSet::toVector() const {
  std::vector<uint32_t> Out;
  Out.reserve(count());
  forEach([&Out](uint32_t Index) { Out.push_back(Index); });
  return Out;
}

bool jsai::operator==(const BitSet &A, const BitSet &B) {
  size_t Common = std::min(A.Words.size(), B.Words.size());
  for (size_t I = 0; I != Common; ++I)
    if (A.Words[I] != B.Words[I])
      return false;
  for (size_t I = Common; I < A.Words.size(); ++I)
    if (A.Words[I] != 0)
      return false;
  for (size_t I = Common; I < B.Words.size(); ++I)
    if (B.Words[I] != 0)
      return false;
  return true;
}
