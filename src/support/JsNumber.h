//===- JsNumber.h - ECMAScript number conversions ---------------*- C++ -*-===//
///
/// \file
/// Number <-> string conversions approximating ECMAScript ToString(Number)
/// and ToNumber(String). Property names for array indices and numeric keys
/// must be identical across the parser, the concrete/approximate
/// interpreters, and the static analysis, so they all route through here.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_JSNUMBER_H
#define JSAI_SUPPORT_JSNUMBER_H

#include <cmath>
#include <string>

namespace jsai {

/// ECMAScript `%` on numbers: the result keeps the dividend's sign (so
/// `-10 % 5` is `-0`). Integral operands in the exactly-representable
/// range take an integer remainder — fmod computes the same value (it is
/// exact for integral doubles) an order of magnitude slower, and `%` on
/// small integers dominates interpreter loop workloads.
inline double jsNumberMod(double X, double Y) {
  constexpr double Lim = 9007199254740992.0; // 2^53
  if (X > -Lim && X < Lim && Y > -Lim && Y < Lim) {
    long long IX = (long long)X, IY = (long long)Y;
    if (double(IX) == X && double(IY) == Y && IY != 0) {
      long long R = IX % IY;
      if (R != 0)
        return double(R);
      return std::signbit(X) ? -0.0 : 0.0;
    }
  }
  return std::fmod(X, Y);
}

/// ECMAScript ToString on a number (Number::toString, base 10): "NaN",
/// "+/-Infinity", "0" for both zeros, integers without a decimal point,
/// and the spec's shortest-round-trip positional/exponential layout
/// otherwise ("0.000001" but "1e-7"; "1e+21" at the positional boundary).
std::string jsNumberToString(double Value);

/// ECMAScript ToNumber on a string (StringToNumber): empty/whitespace -> +0,
/// leading/trailing whitespace ignored, unsigned "0x"/"0o"/"0b" literals,
/// optionally signed decimal literals and "Infinity". Rejects the strtod
/// C extensions ("inf", "nan", hex-float, signed hex) with NaN.
double jsStringToNumber(const std::string &S);

} // namespace jsai

#endif // JSAI_SUPPORT_JSNUMBER_H
