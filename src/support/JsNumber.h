//===- JsNumber.h - ECMAScript number conversions ---------------*- C++ -*-===//
///
/// \file
/// Number <-> string conversions approximating ECMAScript ToString(Number)
/// and ToNumber(String). Property names for array indices and numeric keys
/// must be identical across the parser, the concrete/approximate
/// interpreters, and the static analysis, so they all route through here.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_JSNUMBER_H
#define JSAI_SUPPORT_JSNUMBER_H

#include <string>

namespace jsai {

/// Approximates ECMAScript ToString on a number: "NaN", "Infinity",
/// integers without a decimal point, shortest round-trip otherwise.
std::string jsNumberToString(double Value);

/// Approximates ECMAScript ToNumber on a string: empty/whitespace -> 0,
/// leading/trailing whitespace ignored, "0x" hex supported, otherwise NaN
/// for non-numeric input.
double jsStringToNumber(const std::string &S);

} // namespace jsai

#endif // JSAI_SUPPORT_JSNUMBER_H
