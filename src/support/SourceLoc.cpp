//===- SourceLoc.cpp ------------------------------------------------------===//

#include "support/SourceLoc.h"

#include <cassert>

using namespace jsai;

FileId FileTable::add(const std::string &Name) {
  auto [It, Inserted] = Index.try_emplace(Name, FileId(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}

FileId FileTable::lookup(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? InvalidFileId : It->second;
}

const std::string &FileTable::name(FileId File) const {
  assert(File < Names.size() && "file id out of range");
  return Names[File];
}

std::string FileTable::format(const SourceLoc &Loc) const {
  if (!Loc.isValid() || Loc.File >= Names.size())
    return "<unknown>";
  return Names[Loc.File] + ":" + std::to_string(Loc.Line) + ":" +
         std::to_string(Loc.Col);
}
