//===- WorkerPool.h - Persistent fork/join worker pool ----------*- C++ -*-===//
///
/// \file
/// A small persistent thread pool with a fork/join `parallelFor`: the
/// calling thread participates in the loop, worker threads park on a
/// condition variable between calls, and the call returns only after every
/// index has been processed (the join doubles as the wave barrier the
/// parallel solver needs — all worker writes happen-before the return).
///
/// Indices are handed out one at a time from a shared atomic counter, so
/// uneven per-index work self-balances without any partitioning step. The
/// pool is deliberately minimal: no task queue, no futures, no nesting —
/// one fork/join region at a time, which is exactly the shape of a solver
/// wave (and of any bulk phase the corpus driver might want to fan out).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_SUPPORT_WORKERPOOL_H
#define JSAI_SUPPORT_WORKERPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jsai {

class WorkerPool {
public:
  /// Spawns \p NumThreads worker threads (the caller of parallelFor makes
  /// one more lane, so a pool for a total budget of J jobs takes J - 1).
  /// Zero threads is valid and makes parallelFor run inline.
  explicit WorkerPool(size_t NumThreads);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  size_t threads() const { return Workers.size(); }

  /// Runs Fn(I) exactly once for every I in [0, Count), on the workers and
  /// the calling thread, and returns when all are done. Not reentrant: Fn
  /// must not call parallelFor on the same pool.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex M;
  std::condition_variable WakeCV;  // workers park here between regions
  std::condition_variable DoneCV;  // caller joins here
  uint64_t Generation = 0;         // bumped per parallelFor under M
  bool Stop = false;
  const std::function<void(size_t)> *Fn = nullptr;
  size_t Count = 0;
  size_t Running = 0; // workers still inside the current region
  std::atomic<size_t> Next{0};
};

} // namespace jsai

#endif // JSAI_SUPPORT_WORKERPOOL_H
