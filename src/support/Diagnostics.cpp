//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace jsai;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::render(const FileTable &Files) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += kindName(D.Kind);
    Out += ": ";
    Out += Files.format(D.Loc);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
