//===- ModuleLoader.h - Project parsing and module lookup -------*- C++ -*-===//
///
/// \file
/// Parses every module of a project into one AstContext and resolves require
/// specs to parsed Modules. The loader holds static knowledge only; runtime
/// exports caching lives in the Interpreter so that several executions
/// (dynamic call graph run, approximate interpretation) can share one parse.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_INTERP_MODULELOADER_H
#define JSAI_INTERP_MODULELOADER_H

#include "ast/Ast.h"
#include "interp/FileSystem.h"
#include "support/Diagnostics.h"

#include <memory>

namespace jsai {

class VmChunkCache;

/// Parses and indexes a project's modules.
class ModuleLoader {
public:
  // Ctor/dtor out of line: VmChunkCache is incomplete here.
  ModuleLoader(AstContext &Ctx, const FileSystem &Fs, DiagnosticEngine &Diags);
  ~ModuleLoader();

  /// Parses every ".js" file in the file system (idempotent) and resolves
  /// identifier scopes. The package of "pkg/path.js" is "pkg".
  void parseAll();

  /// Resolves \p Spec relative to \p FromPath and returns the parsed module,
  /// or null when unresolvable (the caller falls back to builtin modules).
  Module *resolve(const std::string &FromPath, const std::string &Spec);

  AstContext &context() { return Ctx; }
  const AstContext &context() const { return Ctx; }
  const FileSystem &fileSystem() const { return Fs; }
  DiagnosticEngine &diagnostics() { return Diags; }

  /// Cross-invocation bytecode chunk cache (see vm/Bytecode.h). Lives on
  /// the loader for the same reason runtime export caching lives off it:
  /// every execution sharing this parse — per-component approx
  /// interpreters, the dynamic call-graph run, serve re-requests — keys
  /// chunks by FunctionDefs of this context, so compiled chunks are
  /// reusable for exactly the loader's lifetime. Lazily constructed; never
  /// touched by Ast-engine interpreters.
  VmChunkCache &vmChunkCache();
  /// Null until the first VM-engine execution compiled a chunk.
  const VmChunkCache *vmChunkCacheIfPresent() const { return ChunkCache.get(); }

private:
  AstContext &Ctx;
  const FileSystem &Fs;
  DiagnosticEngine &Diags;
  bool Parsed = false;
  std::unique_ptr<VmChunkCache> ChunkCache;
};

} // namespace jsai

#endif // JSAI_INTERP_MODULELOADER_H
