//===- FileSystem.cpp -----------------------------------------------------===//

#include "interp/FileSystem.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace jsai;

void FileSystem::addFile(const std::string &Path, std::string Source) {
  Files[normalizePath(Path)] = std::move(Source);
}

size_t FileSystem::addDirectory(const std::string &DiskRoot) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::path Root(DiskRoot);
  if (!fs::is_directory(Root, Ec))
    return 0;
  size_t Loaded = 0;
  // Collect and sort first so insertion order (and diagnostics) are
  // deterministic regardless of directory enumeration order.
  std::vector<fs::path> JsFiles;
  for (auto It = fs::recursive_directory_iterator(Root, Ec);
       It != fs::recursive_directory_iterator(); It.increment(Ec)) {
    if (Ec)
      break;
    if (It->is_regular_file(Ec) && It->path().extension() == ".js")
      JsFiles.push_back(It->path());
  }
  std::sort(JsFiles.begin(), JsFiles.end());
  for (const fs::path &File : JsFiles) {
    std::ifstream In(File);
    if (!In)
      continue;
    std::ostringstream Contents;
    Contents << In.rdbuf();
    std::string Rel = fs::relative(File, Root, Ec).generic_string();
    if (Ec)
      continue;
    addFile(Rel, Contents.str());
    ++Loaded;
  }
  return Loaded;
}

bool FileSystem::exists(const std::string &Path) const {
  return Files.count(Path) != 0;
}

const std::string &FileSystem::read(const std::string &Path) const {
  auto It = Files.find(Path);
  assert(It != Files.end() && "reading nonexistent file");
  return It->second;
}

std::vector<std::string> FileSystem::allPaths() const {
  std::vector<std::string> Out;
  Out.reserve(Files.size());
  for (const auto &[Path, Source] : Files)
    Out.push_back(Path);
  return Out;
}

size_t FileSystem::totalBytes() const {
  size_t Total = 0;
  for (const auto &[Path, Source] : Files)
    Total += Source.size();
  return Total;
}

std::string FileSystem::normalizePath(const std::string &Path) {
  std::vector<std::string> Parts;
  std::string Cur;
  auto Flush = [&] {
    if (Cur.empty() || Cur == ".") {
      Cur.clear();
      return;
    }
    if (Cur == "..") {
      if (!Parts.empty())
        Parts.pop_back();
      Cur.clear();
      return;
    }
    Parts.push_back(Cur);
    Cur.clear();
  };
  for (char C : Path) {
    if (C == '/')
      Flush();
    else
      Cur.push_back(C);
  }
  Flush();
  std::string Out;
  for (size_t I = 0; I != Parts.size(); ++I) {
    if (I)
      Out += '/';
    Out += Parts[I];
  }
  return Out;
}

static std::string dirName(const std::string &Path) {
  size_t Slash = Path.rfind('/');
  return Slash == std::string::npos ? std::string() : Path.substr(0, Slash);
}

std::string FileSystem::resolveRequire(const std::string &FromPath,
                                       const std::string &Spec) const {
  if (Spec.empty())
    return std::string();

  auto TryCandidates = [this](const std::string &Base) -> std::string {
    std::string P = normalizePath(Base);
    if (exists(P))
      return P;
    if (exists(P + ".js"))
      return P + ".js";
    if (exists(P + "/index.js"))
      return P + "/index.js";
    return std::string();
  };

  bool Relative = Spec.rfind("./", 0) == 0 || Spec.rfind("../", 0) == 0;
  if (Relative) {
    std::string Dir = dirName(FromPath);
    std::string Joined = Dir.empty() ? Spec : Dir + "/" + Spec;
    return TryCandidates(Joined);
  }
  // Bare package (possibly with a subpath).
  return TryCandidates(Spec);
}
