//===- InterpStats.h - Interpreter runtime counters -------------*- C++ -*-===//
///
/// \file
/// Counters describing the runtime property system of one interpreter
/// instance: per-site inline-cache hits/misses (see Interpreter's
/// InlineCache) and the shape-tree statistics of its heap. Deterministic
/// for a fixed input program, so they are safe to emit in telemetry and to
/// compare across runs.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_INTERP_INTERPSTATS_H
#define JSAI_INTERP_INTERPSTATS_H

#include <cstdint>

namespace jsai {

/// Property-system counters for one interpreter (or summed over many).
struct InterpStats {
  /// Inline-cache outcomes at static member-access sites. A "miss" includes
  /// the first visit to a site (cold cache) and every guard failure.
  uint64_t ICGetHits = 0;
  uint64_t ICGetMisses = 0;
  uint64_t ICSetHits = 0;
  uint64_t ICSetMisses = 0;

  /// Shape-tree activity of the heap (see ShapeStats).
  uint64_t ShapeTransitions = 0;
  uint64_t ShapesCreated = 0;
  uint64_t DictionaryConversions = 0;

  uint64_t icHits() const { return ICGetHits + ICSetHits; }
  uint64_t icMisses() const { return ICGetMisses + ICSetMisses; }

  /// Fraction of cache-carrying accesses served by the fast path, in [0,1];
  /// 0 when no such access happened.
  double icHitRate() const {
    uint64_t Total = icHits() + icMisses();
    return Total == 0 ? 0.0 : double(icHits()) / double(Total);
  }

  friend bool operator==(const InterpStats &, const InterpStats &) = default;

  InterpStats &operator+=(const InterpStats &O) {
    ICGetHits += O.ICGetHits;
    ICGetMisses += O.ICGetMisses;
    ICSetHits += O.ICSetHits;
    ICSetMisses += O.ICSetMisses;
    ShapeTransitions += O.ShapeTransitions;
    ShapesCreated += O.ShapesCreated;
    DictionaryConversions += O.DictionaryConversions;
    return *this;
  }
};

} // namespace jsai

#endif // JSAI_INTERP_INTERPSTATS_H
