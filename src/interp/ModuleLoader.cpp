//===- ModuleLoader.cpp ---------------------------------------------------===//

#include "interp/ModuleLoader.h"

#include "ast/ScopeResolver.h"
#include "parser/Parser.h"
#include "vm/Bytecode.h"

using namespace jsai;

ModuleLoader::ModuleLoader(AstContext &Ctx, const FileSystem &Fs,
                           DiagnosticEngine &Diags)
    : Ctx(Ctx), Fs(Fs), Diags(Diags) {}

ModuleLoader::~ModuleLoader() = default;

VmChunkCache &ModuleLoader::vmChunkCache() {
  if (!ChunkCache)
    ChunkCache = std::make_unique<VmChunkCache>();
  return *ChunkCache;
}

static std::string packageOf(const std::string &Path) {
  size_t Slash = Path.find('/');
  return Slash == std::string::npos ? Path : Path.substr(0, Slash);
}

void ModuleLoader::parseAll() {
  if (Parsed)
    return;
  Parsed = true;
  Parser P(Ctx, Diags);
  for (const std::string &Path : Fs.allPaths()) {
    if (Path.size() < 3 || Path.substr(Path.size() - 3) != ".js")
      continue;
    if (Ctx.findModule(Path))
      continue;
    P.parseModule(Path, packageOf(Path), Fs.read(Path));
  }
  ScopeResolver(Ctx).resolveAll();
}

Module *ModuleLoader::resolve(const std::string &FromPath,
                              const std::string &Spec) {
  std::string Resolved = Fs.resolveRequire(FromPath, Spec);
  if (Resolved.empty())
    return nullptr;
  return Ctx.findModule(Resolved);
}
