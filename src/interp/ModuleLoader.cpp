//===- ModuleLoader.cpp ---------------------------------------------------===//

#include "interp/ModuleLoader.h"

#include "ast/ScopeResolver.h"
#include "parser/Parser.h"

using namespace jsai;

static std::string packageOf(const std::string &Path) {
  size_t Slash = Path.find('/');
  return Slash == std::string::npos ? Path : Path.substr(0, Slash);
}

void ModuleLoader::parseAll() {
  if (Parsed)
    return;
  Parsed = true;
  Parser P(Ctx, Diags);
  for (const std::string &Path : Fs.allPaths()) {
    if (Path.size() < 3 || Path.substr(Path.size() - 3) != ".js")
      continue;
    if (Ctx.findModule(Path))
      continue;
    P.parseModule(Path, packageOf(Path), Fs.read(Path));
  }
  ScopeResolver(Ctx).resolveAll();
}

Module *ModuleLoader::resolve(const std::string &FromPath,
                              const std::string &Spec) {
  std::string Resolved = Fs.resolveRequire(FromPath, Spec);
  if (Resolved.empty())
    return nullptr;
  return Ctx.findModule(Resolved);
}
