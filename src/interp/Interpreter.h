//===- Interpreter.h - MiniJS tree-walking interpreter ----------*- C++ -*-===//
///
/// \file
/// The MiniJS interpreter. One implementation serves two roles:
///
///  - concrete interpretation (dynamic call graphs via test drivers), and
///  - the execution substrate of approximate interpretation (Section 3 of
///    the paper): when `ApproxMode` is on, a global proxy object `p*`
///    represents unknown values, calls on `p*` are no-ops returning `p*`,
///    property reads on `p*` yield `p*`, writes to `p*` are ignored, and
///    execution is aborted when the call-stack or loop-iteration budget is
///    exhausted.
///
/// Instrumentation is delivered through an InterpObserver; control flow uses
/// Completion records (no C++ exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_INTERP_INTERPRETER_H
#define JSAI_INTERP_INTERPRETER_H

#include "interp/InterpStats.h"
#include "interp/ModuleLoader.h"
#include "interp/Observer.h"
#include "runtime/Heap.h"
#include "support/Cancellation.h"
#include "support/CompilerHints.h"
#include "vm/EngineKind.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jsai {

struct VmChunk;

/// Tunables for one interpreter instance.
struct InterpOptions {
  /// Approximate-interpretation semantics (proxy values, budgets).
  bool ApproxMode = false;
  /// Which engine executes function bodies. `Ast` walks the tree; `Vm`
  /// compiles each FunctionDef to bytecode on first call and dispatches it
  /// in a flat loop. Observationally identical (hints, stats, budgets);
  /// the walker remains the differential oracle for the VM.
  InterpEngineKind Engine = defaultInterpEngineKind();
  /// Maximum call-stack depth before aborting (Section 3 "stack size").
  size_t MaxCallDepth = 128;
  /// Maximum total loop iterations per forced execution (Section 3).
  uint64_t MaxLoopIterations = 200000;
  /// Global safety net on interpreter steps (both modes).
  uint64_t MaxSteps = 50000000;
  /// Seed for the deterministic Math.random replacement.
  uint64_t RandomSeed = 0x5DEECE66DULL;
  /// Per-site inline caches on static member accesses. Off is only useful
  /// as an ablation baseline (bench_interp_scaling measures both sides).
  bool EnableInlineCaches = true;
  /// Run compiled chunks through the bytecode optimizer (peephole
  /// superinstructions + runtime quickening) and share them through the
  /// loader's cross-invocation chunk cache. Observationally identical to
  /// the unoptimized VM — which stays, with the walker, as a differential
  /// oracle. No effect under the Ast engine.
  bool VmOptimize = defaultVmOptEnabled();
  /// Count per-opcode executions into the loader's chunk cache (bench
  /// ablation tables only; one extra branch per dispatched instruction).
  bool CountVmOpcodes = false;
  /// Optional deadline token, polled at the step/loop budget checkpoints.
  /// Expiry behaves exactly like budget exhaustion (Abort completions).
  CancellationToken *Cancel = nullptr;
};

/// Prototype objects for the builtin hierarchy.
struct BuiltinProtos {
  Object *ObjectP = nullptr;
  Object *FunctionP = nullptr;
  Object *ArrayP = nullptr;
  Object *StringP = nullptr;
  Object *NumberP = nullptr;
  Object *BooleanP = nullptr;
  Object *ErrorP = nullptr;
};

/// Executes MiniJS modules and functions.
class Interpreter {
public:
  Interpreter(ModuleLoader &Loader, InterpOptions Opts = InterpOptions(),
              InterpObserver *Obs = nullptr);
  ~Interpreter(); // Out of line: VmChunk is incomplete here.

  //===--------------------------------------------------------------------===
  // Module execution
  //===--------------------------------------------------------------------===

  /// Loads (runs top-level code of) the module at \p Path, caching exports.
  /// \returns the exports value, or a Throw/Abort completion.
  Completion loadModule(const std::string &Path);

  /// The require() semantics: resolve \p Spec from \p FromPath against the
  /// project, falling back to builtin Node-style modules (http, fs, ...).
  Completion requireFrom(const std::string &FromPath, const std::string &Spec,
                         SourceLoc CallSite);

  //===--------------------------------------------------------------------===
  // Function execution
  //===--------------------------------------------------------------------===

  /// Calls \p Callee like `callee.apply(thisV, args)`.
  Completion callValue(const Value &Callee, const Value &ThisV,
                       std::vector<Value> Args, SourceLoc CallSite);

  /// Force-executes \p Fn for the approximate-interpretation worklist:
  /// every parameter and `arguments` are bound to `p*`; `this` is the
  /// inferred receiver (the paper's `this` map) or `p*`.
  Completion callFunctionForced(Object *Fn);

  /// Constructs `new Callee(args)`; \p AllocLoc is the new-expression's
  /// allocation site.
  Completion construct(const Value &Callee, std::vector<Value> Args,
                       SourceLoc AllocLoc, SourceLoc CallSite);

  //===--------------------------------------------------------------------===
  // Shared services (used by builtins)
  //===--------------------------------------------------------------------===

  AstContext &context() { return Loader.context(); }
  StringPool &strings() { return Loader.context().strings(); }
  Heap &heap() { return TheHeap; }
  ModuleLoader &loader() { return Loader; }
  const InterpOptions &options() const { return Opts; }
  InterpObserver *observer() { return Obs; }
  Environment *globalEnv() { return GlobalEnv; }
  BuiltinProtos &protos() { return Protos; }

  Symbol intern(const std::string &S) { return strings().intern(S); }

  /// ECMAScript ToString (arrays join, functions render, proxies render as
  /// "[proxy]"; never fails).
  std::string toStringValue(const Value &V);
  /// ECMAScript ToNumber (objects via ToString).
  double toNumberValue(const Value &V);
  /// Property key of \p V, or nullopt when \p V is a proxy (unknown).
  std::optional<std::string> propertyKey(const Value &V);
  /// Interned property key of \p V, or nullopt when \p V is a proxy.
  std::optional<Symbol> propertyKeySym(const Value &V);

  /// Marker for property accesses without an inline-cache site.
  static constexpr uint32_t NoCache = ~uint32_t(0);

  /// Property read with full MiniJS semantics (primitives, prototypes,
  /// proxies). \p Loc is used for diagnostics only. \p CacheId names the
  /// per-site inline cache (the access's NodeId) for static member sites.
  Completion getProperty(const Value &Base, Symbol Name, SourceLoc Loc,
                         uint32_t CacheId = NoCache);
  Completion getProperty(const Value &Base, const std::string &Name,
                         SourceLoc Loc);
  /// Property write; fires no dynamic-write observation by itself.
  Completion setProperty(const Value &Base, Symbol Name, const Value &V,
                         SourceLoc Loc, uint32_t CacheId = NoCache);
  Completion setProperty(const Value &Base, const std::string &Name,
                         const Value &V, SourceLoc Loc);

  /// Creates and throws an Error object with \p Name ("TypeError", ...) and
  /// \p Message.
  Completion throwError(const std::string &Name, const std::string &Message);

  /// Fresh array for builtin results (no allocation site).
  Value makeArray(std::vector<Value> Elements);

  /// Notifies the observer of a standard-library dynamic property write
  /// (Object.defineProperty / Object.assign / ...), then performs it.
  void dynamicWriteByBuiltin(Object *Base, Symbol Name, const Value &V);
  void dynamicWriteByBuiltin(Object *Base, const std::string &Name,
                             const Value &V);

  /// Inline-cache and shape counters of this interpreter (shape numbers
  /// come from the heap's shape tree).
  InterpStats stats() const;

  /// Number of function bodies compiled to bytecode so far. Zero under the
  /// tree walker; tests use this to prove the VM engine actually ran.
  size_t compiledVmChunks() const { return VmChunks.size(); }

  /// Runs `eval(code)` in environment \p Env (direct-eval semantics).
  Completion runEval(const std::string &Code, Environment *Env,
                     FunctionDef *EnclosingFunc, SourceLoc CallSite);

  /// Executes the body of an already-parsed eval-style function directly in
  /// \p Env (hoisting its declarations there). Used by runEval and by the
  /// Function constructor.
  Completion runEvalBody(FunctionDef *F, Environment *Env);

  /// The call-expression location currently being evaluated (natives use
  /// this to attribute callback invocations and require edges).
  SourceLoc currentCallSite() const { return CurCallSite; }

  //===--------------------------------------------------------------------===
  // Proxy machinery (approximate mode)
  //===--------------------------------------------------------------------===

  Object *proxyObject() { return TheProxy; }
  Value proxyValue() { return Value::object(TheProxy); }
  bool isProxyValue(const Value &V) const {
    return V.isObject() && V.asObject()->isProxy();
  }
  /// Wraps \p Target so absent properties delegate to `p*` (used for
  /// inferred receivers, Section 3).
  Object *makeReceiverProxy(Object *Target);

  //===--------------------------------------------------------------------===
  // Budgets
  //===--------------------------------------------------------------------===

  /// Resets the per-execution loop budget (called before each worklist item
  /// by the approximate interpreter).
  void resetExecutionBudget() { LoopIterations = 0; }
  /// True when any budget has been exhausted.
  bool budgetExhausted() const { return BudgetHit; }

  /// Console output captured from `console.log` and friends (for tests and
  /// examples).
  std::vector<std::string> &consoleOutput() { return Console; }

  /// Deterministic replacement for Math.random.
  double nextRandom();

  /// Registers a builtin module (NodeBuiltins installs http/fs/net/...).
  void registerBuiltinModule(const std::string &Name, Value Exports);

  //===--------------------------------------------------------------------===
  // Value construction helpers
  //===--------------------------------------------------------------------===

  /// Creates a closure for \p Def over \p Env, with its `prototype` object;
  /// fires onFunctionCreated.
  Value makeClosure(FunctionDef *Def, Environment *Env, SourceLoc Loc);

private:
  friend class InterpreterTestPeer;

  /// Per-site monomorphic inline cache of one static MemberExpr, indexed by
  /// the node's NodeId. The get side remembers "receivers of shape S find
  /// Name as a data slot at GetSlot on the GetDepth-th prototype"; the set
  /// side remembers either an own data-slot overwrite or a cached add
  /// transition. Hits re-validate the receiver shape, the prototype
  /// identities and shapes along the recorded chain, and that the slot is
  /// still a data slot, so shape transitions, prototype surgery, dictionary
  /// conversion, and accessor installation all fall back to the slow path.
  struct InlineCache {
    static constexpr unsigned MaxChain = 4;

    /// Recording is deferred to a site's second miss: approximate
    /// interpretation executes most sites exactly once, where recording
    /// could never pay for itself.
    uint8_t GetPrimed = 0;
    uint8_t SetPrimed = 0;

    // Get side (GetShape == nullptr while cold).
    Shape *GetShape = nullptr;
    uint32_t GetSlot = 0;
    uint8_t GetDepth = 0; ///< Prototype hops to the holder; 0 == own slot.
    Object *GetChain[MaxChain] = {};
    Shape *GetChainShapes[MaxChain] = {};

    // Set side (SetShape == nullptr while cold).
    Shape *SetShape = nullptr;
    /// Null: overwrite the own data slot SetSlot. Non-null: append a slot
    /// via this add transition — valid only while the full prototype chain
    /// (SetChainLen links, then null) matches, since assignment consults
    /// the whole chain for setters and shadowing.
    Shape *SetNewShape = nullptr;
    uint32_t SetSlot = 0;
    uint8_t SetChainLen = 0;
    Object *SetChain[MaxChain] = {};
    Shape *SetChainShapes[MaxChain] = {};
  };

  /// The cache block for node \p Id, growing the table on demand (eval can
  /// add nodes after construction). The reference is invalidated by the
  /// next cacheAt call.
  InlineCache &cacheAt(uint32_t Id);
  /// True when accesses to \p Name on \p O are shape-describable: arrays,
  /// arguments objects, proxies, and callable name/length virtualize
  /// properties invisibly to shapes and stay uncached.
  bool icEligible(const Object *O, Symbol Name);

  /// Everything past the inline-cache probe of getProperty/setProperty:
  /// primitive prototypes, proxies, array/arguments virtualization,
  /// dictionary-mode and generic chain walks, accessor invocation, and IC
  /// recording. Noinline so the probe — the only part the hot paths (VM
  /// dispatch, quickened member ops) actually execute — stays small enough
  /// to inline into its callers.
  JSAI_NOINLINE Completion getPropertySlow(const Value &Base, Symbol Name,
                                           SourceLoc Loc, uint32_t CacheId);
  JSAI_NOINLINE Completion setPropertySlow(const Value &Base, Symbol Name,
                                           const Value &V, SourceLoc Loc,
                                           uint32_t CacheId);
  void recordGetIC(uint32_t CacheId, Object *Recv, Object *Holder,
                   unsigned Hops, Symbol Name);
  void recordSetIC(uint32_t CacheId, Object *Recv, Shape *OldShape,
                   Symbol Name);

  // Core evaluation (Interpreter.cpp).
  Completion evalExpr(Expr *E, Environment *Env, FunctionDef *F);
  Completion execStmt(Stmt *S, Environment *Env, FunctionDef *F);
  Completion execBlockBody(const std::vector<Stmt *> &Body, Environment *Env,
                           FunctionDef *F);
  Completion evalCall(CallExpr *C, Environment *Env, FunctionDef *F);
  Completion evalAssign(AssignExpr *A, Environment *Env, FunctionDef *F);
  Completion evalMember(MemberExpr *M, Environment *Env, FunctionDef *F);
  Completion evalObjectLit(ObjectLit *O, Environment *Env, FunctionDef *F);
  Completion evalBinary(BinaryExpr *B, Environment *Env, FunctionDef *F);
  Completion evalUnary(UnaryExpr *U, Environment *Env, FunctionDef *F);
  Completion evalUpdate(UpdateExpr *U, Environment *Env, FunctionDef *F);
  Completion evalForIn(ForInStmt *L, Environment *Env, FunctionDef *F);

  // Engine-neutral operator semantics, shared verbatim between the walker
  // and the bytecode VM so the two cannot drift (Interpreter.cpp).
  Value applyArithOp(AssignOp Op, const Value &Old, const Value &Rhs);
  Value combineCompound(AssignOp Op, const Value &Old, const Value &Rhs);
  Value applyBinaryValueOp(BinaryOp Op, const Value &A, const Value &C);
  Value applyUnaryValueOp(UnaryOp Op, const Value &V);
  Value bumpValue(bool IsIncrement, const Value &Old);
  Value deleteMemberOnValue(const Value &Base,
                            const std::optional<Symbol> &Key);
  std::vector<Value> forInItems(ForInStmt *L, Object *O);

  // Bytecode engine (vm/VmInterpreter.cpp).
  /// Runs \p Def's body in \p Env with the configured engine. The single
  /// switch point between the walker and the VM (callClosure,
  /// callFunctionForced, and runEvalBody all funnel through here).
  Completion executeBody(FunctionDef *Def, Environment *Env);
  /// Bytecode for \p Def, compiled (and, with VmOptimize, optimized) on
  /// first use and shared through the loader's cross-invocation chunk
  /// cache; eval re-parses create fresh FunctionDefs and fresh entries.
  /// Mutable because quickening rewrites optimized chunks in place.
  VmChunk &chunkFor(FunctionDef *Def);
  Completion runChunk(VmChunk &Chunk, Environment *Env, FunctionDef *F);

  /// Invokes a program-defined closure.
  Completion callClosure(Object *Fn, const Value &ThisV,
                         std::vector<Value> &Args, SourceLoc CallSite,
                         Object *NewTarget = nullptr);

  /// Writes \p V to variable \p Name in \p Env (creating a global binding
  /// when undeclared, as in sloppy-mode JavaScript).
  void assignVariable(Symbol Name, const Value &V, Environment *Env);

  /// True while the step/loop budget still has headroom; marks the abort
  /// otherwise. Inline: both engines charge one of these per expression or
  /// statement region, so the call itself is interpreter hot-path.
  bool stepBudget() {
    if (++Steps > Opts.MaxSteps) {
      BudgetHit = true;
      return false;
    }
    if (Opts.Cancel && Opts.Cancel->expired()) {
      BudgetHit = true;
      return false;
    }
    return true;
  }
  bool loopBudget() {
    ++LoopIterations;
    if (Opts.ApproxMode && LoopIterations > Opts.MaxLoopIterations) {
      BudgetHit = true;
      return false;
    }
    return stepBudget();
  }
  /// Charges \p N fused steps at once (superinstructions). Abort-equivalent
  /// to N sequential stepBudget() calls: the fused region performs no
  /// observable effect between the individual charges, so only whether the
  /// final Steps value crossed MaxSteps is observable — and that is
  /// identical. The cancellation token is polled once instead of N times;
  /// its expiry is wall-clock-driven and not part of the parity contract.
  bool stepBudgetN(uint64_t N) {
    Steps += N;
    if (Steps > Opts.MaxSteps) {
      BudgetHit = true;
      return false;
    }
    if (Opts.Cancel && Opts.Cancel->expired()) {
      BudgetHit = true;
      return false;
    }
    return true;
  }

  ModuleLoader &Loader;
  InterpOptions Opts;
  InterpObserver *Obs;
  Heap TheHeap;

  Environment *GlobalEnv = nullptr;
  Object *GlobalObject = nullptr;
  Object *TheProxy = nullptr;
  BuiltinProtos Protos;

  /// Runtime exports cache: module path -> exports value; also breaks
  /// require cycles (a loading module's partial exports are visible).
  std::unordered_map<std::string, Value> ModuleExports;
  std::unordered_map<std::string, Value> BuiltinModules;

  std::vector<std::string> Console;

  /// Chunks this interpreter has touched, keyed by FunctionDef (VM engine
  /// only). Non-owning views into the loader's cross-invocation chunk
  /// cache, which outlives every interpreter on the loader; kept per
  /// instance so compiledVmChunks() still counts this interpreter's own
  /// footprint and repeat lookups skip the shared map.
  std::unordered_map<FunctionDef *, VmChunk *> VmChunks;

  /// Inline caches, indexed by NodeId (sparse; most nodes never host one).
  std::vector<InlineCache> Caches;
  /// IC hit/miss counters; shape counters live in the heap's ShapeTree.
  InterpStats Counters;

  size_t CallDepth = 0;
  uint64_t Steps = 0;
  uint64_t LoopIterations = 0;
  bool BudgetHit = false;
  uint64_t RandomState;
  SourceLoc CurCallSite;
};

} // namespace jsai

#endif // JSAI_INTERP_INTERPRETER_H
