//===- FileSystem.h - In-memory project file system -------------*- C++ -*-===//
///
/// \file
/// Virtual file system holding a project's module sources, with Node.js-like
/// require-path resolution over the virtual layout "<package>/<file>.js"
/// (the main application package is conventionally named "app").
///
/// Resolution rules:
///  - relative specs ("./x", "../y") resolve against the requiring module's
///    directory, trying "<p>", "<p>.js", "<p>/index.js";
///  - bare specs ("express") resolve to "express/index.js", also trying
///    "express.js" and subpaths ("express/lib/router" ->
///    "express/lib/router.js" / ".../index.js").
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_INTERP_FILESYSTEM_H
#define JSAI_INTERP_FILESYSTEM_H

#include <map>
#include <string>
#include <vector>

namespace jsai {

/// In-memory map of module paths to sources. Paths are stored normalized
/// (no "./" or "../" segments). Iteration order is lexicographic, so whole-
/// project operations are deterministic.
class FileSystem {
public:
  /// Adds (or replaces) a file.
  void addFile(const std::string &Path, std::string Source);

  /// Loads every "*.js" file under \p DiskRoot (recursively) from the host
  /// file system, keyed by its path relative to \p DiskRoot. \returns the
  /// number of files loaded, or 0 when the directory does not exist.
  size_t addDirectory(const std::string &DiskRoot);

  bool exists(const std::string &Path) const;

  /// \returns the source of \p Path; must exist.
  const std::string &read(const std::string &Path) const;

  /// All file paths, lexicographically sorted.
  std::vector<std::string> allPaths() const;

  size_t size() const { return Files.size(); }

  /// Total size of all sources in bytes (the evaluation's "code size").
  size_t totalBytes() const;

  /// Resolves a require spec from \p FromPath. \returns the resolved path,
  /// or an empty string when nothing matches.
  std::string resolveRequire(const std::string &FromPath,
                             const std::string &Spec) const;

  /// Collapses "." and ".." segments; pure function, exposed for tests.
  static std::string normalizePath(const std::string &Path);

private:
  std::map<std::string, std::string> Files;
};

} // namespace jsai

#endif // JSAI_INTERP_FILESYSTEM_H
