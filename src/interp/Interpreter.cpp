//===- Interpreter.cpp - MiniJS tree-walking interpreter ------------------===//

#include "interp/Interpreter.h"

#include "ast/ScopeResolver.h"
#include "builtins/Builtins.h"
#include "parser/Parser.h"
#include "support/JsNumber.h"
#include "vm/Bytecode.h" // Completes VmChunk for the chunk-cache member.

#include <cassert>
#include <cmath>

using namespace jsai;

InterpObserver::~InterpObserver() = default;

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(ModuleLoader &Loader, InterpOptions Opts,
                         InterpObserver *Obs)
    : Loader(Loader), Opts(Opts), Obs(Obs), RandomState(Opts.RandomSeed) {
  Loader.parseAll();
  GlobalEnv = TheHeap.newEnvironment(nullptr);
  TheProxy = TheHeap.newObject(ObjectClass::Proxy, SourceLoc::invalid());
  installBuiltins(*this);
  GlobalObject = TheHeap.newObject(ObjectClass::Plain, SourceLoc::invalid());
  GlobalEnv->define(intern("global"), Value::object(GlobalObject));
  GlobalEnv->define(intern("globalThis"), Value::object(GlobalObject));
}

Object *Interpreter::makeReceiverProxy(Object *Target) {
  if (Target->objectClass() == ObjectClass::ReceiverProxy)
    return Target;
  Object *P =
      TheHeap.newObject(ObjectClass::ReceiverProxy, SourceLoc::invalid());
  P->setProxyTarget(Target);
  return P;
}

double Interpreter::nextRandom() {
  // xorshift64*; deterministic across platforms.
  RandomState ^= RandomState >> 12;
  RandomState ^= RandomState << 25;
  RandomState ^= RandomState >> 27;
  uint64_t Bits = RandomState * 0x2545F4914F6CDD1DULL;
  return double(Bits >> 11) / double(1ULL << 53);
}

void Interpreter::registerBuiltinModule(const std::string &Name,
                                        Value Exports) {
  BuiltinModules[Name] = std::move(Exports);
}

//===----------------------------------------------------------------------===//
// Budgets
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

std::string Interpreter::toStringValue(const Value &V) {
  switch (V.kind()) {
  case ValueKind::Undefined:
    return "undefined";
  case ValueKind::Null:
    return "null";
  case ValueKind::Boolean:
    return V.asBoolean() ? "true" : "false";
  case ValueKind::Number:
    return jsNumberToString(V.asNumber());
  case ValueKind::String:
    return V.asString();
  case ValueKind::Object: {
    Object *O = V.asObject();
    if (O->isProxy())
      return "[proxy]";
    if (O->objectClass() == ObjectClass::Array ||
        O->objectClass() == ObjectClass::Arguments) {
      std::string Out;
      for (size_t I = 0, E = O->elements().size(); I != E; ++I) {
        if (I)
          Out += ",";
        const Value &El = O->elements()[I];
        if (!El.isNullish())
          Out += toStringValue(El);
      }
      return Out;
    }
    if (O->isCallable()) {
      if (FunctionDef *Def = O->functionDef()) {
        Symbol Name = Def->name();
        std::string N =
            Name == InvalidSymbol ? std::string() : strings().str(Name);
        return "function " + N + "() { [code] }";
      }
      return "function " + O->nativeName() + "() { [native code] }";
    }
    bool IsError = O->objectClass() == ObjectClass::Error;
    for (Object *P = O->proto(); !IsError && P; P = P->proto())
      IsError = P == Protos.ErrorP;
    if (IsError) {
      std::string Name = "Error", Msg;
      if (auto N = O->get(context().WK.Name); N && N->isString())
        Name = N->asString();
      if (auto M = O->get(context().WK.Message); M && M->isString())
        Msg = M->asString();
      return Msg.empty() ? Name : Name + ": " + Msg;
    }
    return "[object Object]";
  }
  }
  return "undefined";
}

double Interpreter::toNumberValue(const Value &V) {
  switch (V.kind()) {
  case ValueKind::Undefined:
    return std::nan("");
  case ValueKind::Null:
    return 0;
  case ValueKind::Boolean:
    return V.asBoolean() ? 1 : 0;
  case ValueKind::Number:
    return V.asNumber();
  case ValueKind::String:
    return jsStringToNumber(V.asString());
  case ValueKind::Object:
    if (V.asObject()->isProxy())
      return std::nan("");
    return jsStringToNumber(toStringValue(V));
  }
  return std::nan("");
}

std::optional<std::string> Interpreter::propertyKey(const Value &V) {
  if (isProxyValue(V))
    return std::nullopt;
  return toStringValue(V);
}

std::optional<Symbol> Interpreter::propertyKeySym(const Value &V) {
  if (isProxyValue(V))
    return std::nullopt;
  return intern(toStringValue(V));
}

/// ECMAScript ToInt32, for the bitwise operators.
static int32_t toInt32(double D) {
  if (std::isnan(D) || std::isinf(D))
    return 0;
  return int32_t(int64_t(std::fmod(std::trunc(D), 4294967296.0)));
}

/// \returns true when \p Name is a canonical array index, storing it in
/// \p Index.
static bool isArrayIndex(const std::string &Name, size_t &Index) {
  if (Name.empty() || Name.size() > 9)
    return false;
  for (char C : Name)
    if (C < '0' || C > '9')
      return false;
  if (Name.size() > 1 && Name[0] == '0')
    return false;
  Index = size_t(std::stoull(Name));
  return true;
}

//===----------------------------------------------------------------------===//
// Property access
//===----------------------------------------------------------------------===//

Interpreter::InlineCache &Interpreter::cacheAt(uint32_t Id) {
  if (Id >= Caches.size()) {
    size_t N = context().numNodes();
    Caches.resize(N > size_t(Id) ? N : size_t(Id) + 1);
  }
  return Caches[Id];
}

bool Interpreter::icEligible(const Object *O, Symbol Name) {
  ObjectClass C = O->objectClass();
  if (C == ObjectClass::Array || C == ObjectClass::Arguments || O->isProxy())
    return false;
  // Callables virtualize `name` and (absent an own slot) `length`; a shape
  // cannot distinguish them from plain objects, so stay on the slow path.
  if (O->isCallable() &&
      (Name == context().WK.Name || Name == context().SymLength))
    return false;
  return true;
}

void Interpreter::recordGetIC(uint32_t CacheId, Object *Recv, Object *Holder,
                              unsigned Hops, Symbol Name) {
  if (Recv->inDictionaryMode() || Holder->inDictionaryMode() ||
      Hops > InlineCache::MaxChain || !icEligible(Recv, Name))
    return;
  uint32_t SlotIdx;
  if (!Holder->shape()->find(Name, SlotIdx))
    return;
  InlineCache &IC = cacheAt(CacheId);
  IC.GetShape = nullptr;
  Object *H = Recv;
  for (unsigned I = 0; I != Hops; ++I) {
    H = H->proto();
    // A dictionary-mode link can change layout without changing shape, so
    // chains through one are uncacheable.
    if (H->inDictionaryMode())
      return;
    IC.GetChain[I] = H;
    IC.GetChainShapes[I] = H->shape();
  }
  IC.GetSlot = SlotIdx;
  IC.GetDepth = uint8_t(Hops);
  IC.GetShape = Recv->shape();
}

void Interpreter::recordSetIC(uint32_t CacheId, Object *Recv, Shape *OldShape,
                              Symbol Name) {
  if (!OldShape || !icEligible(Recv, Name))
    return;
  Shape *NewShape = Recv->shape();
  if (!NewShape)
    return;
  if (NewShape == OldShape) {
    // Overwrote an existing own data slot.
    uint32_t SlotIdx;
    if (!OldShape->find(Name, SlotIdx))
      return;
    InlineCache &IC = cacheAt(CacheId);
    IC.SetShape = OldShape;
    IC.SetNewShape = nullptr;
    IC.SetSlot = SlotIdx;
    IC.SetChainLen = 0;
    return;
  }
  // Appended a slot. The cached transition may only replay while no object
  // on the prototype chain owns Name at all (a chain data slot could later
  // become a setter without a shape change), the chain is short, and every
  // link is in shape mode so layout changes are visible as shape changes.
  unsigned N = 0;
  Object *Chain[InlineCache::MaxChain];
  for (Object *H = Recv->proto(); H; H = H->proto()) {
    if (N == InlineCache::MaxChain || H->inDictionaryMode() ||
        H->getOwnSlot(Name))
      return;
    Chain[N++] = H;
  }
  InlineCache &IC = cacheAt(CacheId);
  IC.SetShape = OldShape;
  IC.SetNewShape = NewShape;
  IC.SetSlot = OldShape->numSlots();
  IC.SetChainLen = uint8_t(N);
  for (unsigned I = 0; I != N; ++I) {
    IC.SetChain[I] = Chain[I];
    IC.SetChainShapes[I] = Chain[I]->shape();
  }
}

Completion Interpreter::getProperty(const Value &Base, const std::string &Name,
                                    SourceLoc Loc) {
  return getProperty(Base, intern(Name), Loc);
}

Completion Interpreter::getProperty(const Value &Base, Symbol Name,
                                    SourceLoc Loc, uint32_t CacheId) {
  // Only the inline-cache probe lives here; every fallback (primitives,
  // proxies, dictionary mode, accessors, recording) is in the noinline
  // slow tail so this probe can inline into the dispatch loops.
  if (!Opts.EnableInlineCaches)
    CacheId = NoCache;
  if (CacheId != NoCache && Base.isObject()) {
    Object *O = Base.asObject();
    const InlineCache &IC = cacheAt(CacheId);
    if (IC.GetShape && IC.GetShape == O->shape() && icEligible(O, Name)) {
      Object *Holder = O;
      bool Valid = true;
      for (uint8_t I = 0; I != IC.GetDepth; ++I) {
        Holder = Holder->proto();
        if (Holder != IC.GetChain[I] ||
            Holder->shape() != IC.GetChainShapes[I]) {
          Valid = false;
          break;
        }
      }
      if (Valid) {
        const PropertySlot &S = Holder->slotAt(IC.GetSlot);
        if (!S.isAccessor()) {
          ++Counters.ICGetHits;
          return S.V;
        }
      }
    }
  }
  return getPropertySlow(Base, Name, Loc, CacheId);
}

Completion Interpreter::getPropertySlow(const Value &Base, Symbol Name,
                                        SourceLoc Loc, uint32_t CacheId) {
  if (CacheId != NoCache)
    ++Counters.ICGetMisses;
  switch (Base.kind()) {
  case ValueKind::Undefined:
  case ValueKind::Null:
    if (Opts.ApproxMode)
      return proxyValue(); // Keep forced execution going.
    return throwError("TypeError",
                      "cannot read property '" + strings().str(Name) +
                          "' of " + toStringValue(Base) + " at " +
                          context().files().format(Loc));
  case ValueKind::Boolean:
    if (Object *P = Protos.BooleanP)
      if (auto V = P->get(Name))
        return *V;
    return Value::undefined();
  case ValueKind::Number:
    if (Object *P = Protos.NumberP)
      if (auto V = P->get(Name))
        return *V;
    return Value::undefined();
  case ValueKind::String: {
    const std::string &S = Base.asString();
    if (Name == context().SymLength)
      return Value::number(double(S.size()));
    size_t Index;
    if (isArrayIndex(strings().str(Name), Index))
      return Index < S.size() ? Value::str(std::string(1, S[Index]))
                              : Value::undefined();
    if (Object *P = Protos.StringP)
      if (auto V = P->get(Name))
        return *V;
    return Value::undefined();
  }
  case ValueKind::Object:
    break;
  }

  Object *O = Base.asObject();
  if (O->objectClass() == ObjectClass::Proxy)
    return proxyValue();
  if (O->objectClass() == ObjectClass::ReceiverProxy) {
    Completion Inner =
        getProperty(Value::object(O->proxyTarget()), Name, Loc);
    JSAI_PROPAGATE(Inner);
    if (Inner.V.isUndefined())
      return proxyValue(); // Absent properties delegate to p*.
    return Inner;
  }
  if (O->objectClass() == ObjectClass::Array ||
      O->objectClass() == ObjectClass::Arguments) {
    if (Name == context().SymLength)
      return Value::number(double(O->elements().size()));
    size_t Index;
    if (isArrayIndex(strings().str(Name), Index))
      return Index < O->elements().size() ? O->elements()[Index]
                                          : Value::undefined();
  }
  if (O->isCallable()) {
    if (Name == context().WK.Name) {
      if (FunctionDef *Def = O->functionDef()) {
        Symbol N = Def->name();
        return Value::str(N == InvalidSymbol ? "" : strings().str(N));
      }
      return Value::str(O->nativeName());
    }
    if (Name == context().SymLength && !O->hasOwn(Name)) {
      if (FunctionDef *Def = O->functionDef())
        return Value::number(double(Def->params().size()));
      return Value::number(0);
    }
  }
  // Generic chain walk; a data hit is what the inline cache memoizes.
  Object *Holder = O;
  unsigned Hops = 0;
  const PropertySlot *Slot = Holder->getOwnSlot(Name);
  while (!Slot && Holder->proto()) {
    Holder = Holder->proto();
    ++Hops;
    Slot = Holder->getOwnSlot(Name);
  }
  if (!Slot)
    return Value::undefined();
  if (!Slot->isAccessor()) {
    if (CacheId != NoCache) {
      InlineCache &IC = cacheAt(CacheId);
      if (IC.GetPrimed)
        recordGetIC(CacheId, O, Holder, Hops, Name);
      else
        IC.GetPrimed = 1;
    }
    return Slot->V;
  }
  if (!Slot->Getter)
    return Value::undefined();
  // Getter invocation: the property-access location acts as the call
  // site (this is what makes getter call edges appear at read sites).
  // Copy the getter out first: the slot pointer dies on any mutation.
  Object *Getter = Slot->Getter;
  return callValue(Value::object(Getter), Base, {}, Loc);
}

Completion Interpreter::setProperty(const Value &Base, const std::string &Name,
                                    const Value &V, SourceLoc Loc) {
  return setProperty(Base, intern(Name), V, Loc);
}

Completion Interpreter::setProperty(const Value &Base, Symbol Name,
                                    const Value &V, SourceLoc Loc,
                                    uint32_t CacheId) {
  // Probe-only head; see getProperty for the split rationale.
  if (!Base.isObject())
    return Value::undefined(); // Writes to primitives are silently dropped.
  Object *O = Base.asObject();
  if (!Opts.EnableInlineCaches)
    CacheId = NoCache;
  if (CacheId != NoCache) {
    const InlineCache &IC = cacheAt(CacheId);
    if (IC.SetShape && IC.SetShape == O->shape() && icEligible(O, Name)) {
      if (!IC.SetNewShape) {
        // Overwrite of an existing own data slot.
        PropertySlot &S = O->slotAt(IC.SetSlot);
        if (!S.isAccessor()) {
          S.V = V;
          ++Counters.ICSetHits;
          return Value::undefined();
        }
      } else {
        // Cached add transition: replayable only while the whole recorded
        // prototype chain (ending at null) is unchanged, since assignment
        // consults the full chain for setters.
        Object *H = O;
        bool Valid = true;
        for (uint8_t I = 0; I != IC.SetChainLen; ++I) {
          H = H->proto();
          if (H != IC.SetChain[I] || H->shape() != IC.SetChainShapes[I]) {
            Valid = false;
            break;
          }
        }
        if (Valid && H->proto() == nullptr) {
          O->addSlotViaCachedTransition(IC.SetNewShape, V);
          ++Counters.ICSetHits;
          return Value::undefined();
        }
      }
    }
  }
  return setPropertySlow(Base, Name, V, Loc, CacheId);
}

Completion Interpreter::setPropertySlow(const Value &Base, Symbol Name,
                                        const Value &V, SourceLoc Loc,
                                        uint32_t CacheId) {
  Object *O = Base.asObject();
  if (CacheId != NoCache)
    ++Counters.ICSetMisses;
  if (O->objectClass() == ObjectClass::Proxy)
    return Value::undefined(); // Writes to p* are ignored (Section 3).
  if (O->objectClass() == ObjectClass::ReceiverProxy)
    return setProperty(Value::object(O->proxyTarget()), Name, V, Loc);
  if (O->objectClass() == ObjectClass::Array ||
      O->objectClass() == ObjectClass::Arguments) {
    if (Name == context().SymLength) {
      double Len = toNumberValue(V);
      if (Len >= 0 && Len == std::floor(Len)) {
        O->elements().resize(size_t(Len));
        return Value::undefined();
      }
    }
    size_t Index;
    if (isArrayIndex(strings().str(Name), Index)) {
      if (Index >= O->elements().size())
        O->elements().resize(Index + 1);
      O->elements()[Index] = V;
      return Value::undefined();
    }
  }
  if (const PropertySlot *Slot = O->findSlot(Name);
      Slot && Slot->isAccessor()) {
    if (!Slot->Setter)
      return Value::undefined(); // Assigning through a get-only property.
    // Copy the setter out first: the slot pointer dies on any mutation.
    Object *Setter = Slot->Setter;
    std::vector<Value> Args = {V};
    Completion C =
        callValue(Value::object(Setter), Base, std::move(Args), Loc);
    JSAI_PROPAGATE(C);
    return Value::undefined();
  }
  Shape *OldShape = O->shape();
  O->setOwn(Name, V);
  if (CacheId != NoCache) {
    InlineCache &IC = cacheAt(CacheId);
    if (IC.SetPrimed)
      recordSetIC(CacheId, O, OldShape, Name);
    else
      IC.SetPrimed = 1;
  }
  return Value::undefined();
}

Completion Interpreter::throwError(const std::string &Name,
                                   const std::string &Message) {
  Object *E = TheHeap.newObject(ObjectClass::Error, SourceLoc::invalid());
  E->setProto(Protos.ErrorP);
  E->setOwn(context().WK.Name, Value::str(Name));
  E->setOwn(context().WK.Message, Value::str(Message));
  return Completion::toss(Value::object(E));
}

Value Interpreter::makeArray(std::vector<Value> Elements) {
  Object *A = TheHeap.newArray(SourceLoc::invalid(), std::move(Elements));
  A->setProto(Protos.ArrayP);
  return Value::object(A);
}

void Interpreter::dynamicWriteByBuiltin(Object *Base, const std::string &Name,
                                        const Value &V) {
  dynamicWriteByBuiltin(Base, intern(Name), V);
}

void Interpreter::dynamicWriteByBuiltin(Object *Base, Symbol Name,
                                        const Value &V) {
  if (Obs)
    Obs->onDynamicWrite(CurCallSite, Base, strings().str(Name), V);
  setProperty(Value::object(Base), Name, V, SourceLoc::invalid());
}

InterpStats Interpreter::stats() const {
  InterpStats S = Counters;
  const ShapeStats &H = TheHeap.shapes().stats();
  S.ShapeTransitions = H.NumTransitions;
  S.ShapesCreated = H.NumShapesCreated;
  S.DictionaryConversions = H.NumDictionaryConversions;
  return S;
}

//===----------------------------------------------------------------------===//
// Closures and calls
//===----------------------------------------------------------------------===//

Value Interpreter::makeClosure(FunctionDef *Def, Environment *Env,
                               SourceLoc Loc) {
  SourceLoc Birth = Def->isInEval() ? SourceLoc::invalid() : Loc;
  Object *Fn = TheHeap.newClosure(Def, Env, Birth);
  Fn->setProto(Protos.FunctionP);
  // Every function carries a fresh `.prototype` object for `new`.
  Object *Proto = TheHeap.newObject(ObjectClass::Plain, Birth);
  Proto->setProto(Protos.ObjectP);
  Proto->setFunctionPrototype(true);
  Proto->setOwn(context().SymConstructor, Value::object(Fn));
  Fn->setOwn(context().SymPrototype, Value::object(Proto));
  if (Obs)
    Obs->onFunctionCreated(Fn, Def);
  return Value::object(Fn);
}

Completion Interpreter::callValue(const Value &Callee, const Value &ThisV,
                                  std::vector<Value> Args,
                                  SourceLoc CallSite) {
  if (!stepBudget())
    return Completion::abort();
  if (!Callee.isObject()) {
    if (Opts.ApproxMode)
      return proxyValue();
    return throwError("TypeError", toStringValue(Callee) +
                                       " is not a function at " +
                                       context().files().format(CallSite));
  }
  Object *Fn = Callee.asObject();
  if (Fn->isProxy())
    return proxyValue(); // Calls on p* are no-ops returning p* (Section 3).
  if (!Fn->isCallable()) {
    if (Opts.ApproxMode)
      return proxyValue();
    return throwError("TypeError", "value is not a function at " +
                                       context().files().format(CallSite));
  }
  if (Fn->boundTarget()) {
    std::vector<Value> Merged = Fn->boundArgs();
    Merged.insert(Merged.end(), Args.begin(), Args.end());
    return callValue(Value::object(Fn->boundTarget()), Fn->boundThis(),
                     std::move(Merged), CallSite);
  }

  SourceLoc SavedSite = CurCallSite;
  CurCallSite = CallSite;
  Completion Result;
  if (const NativeFn *Native = Fn->native()) {
    if (CallDepth >= Opts.MaxCallDepth) {
      BudgetHit = true;
      Result = Completion::abort();
    } else {
      ++CallDepth;
      Result = (*Native)(*this, ThisV, Args);
      --CallDepth;
    }
  } else {
    Result = callClosure(Fn, ThisV, Args, CallSite);
  }
  CurCallSite = SavedSite;
  return Result;
}

Completion Interpreter::callClosure(Object *Fn, const Value &ThisV,
                                    std::vector<Value> &Args,
                                    SourceLoc CallSite, Object *NewTarget) {
  (void)NewTarget;
  FunctionDef *Def = Fn->functionDef();
  assert(Def && "callClosure on non-closure");
  if (CallDepth >= Opts.MaxCallDepth) {
    BudgetHit = true;
    return Completion::abort();
  }

  Environment *Env = TheHeap.newEnvironment(Fn->closureEnv());
  AstContext &Ctx = context();

  if (!Def->isArrow()) {
    Env->define(Ctx.SymThis, ThisV);
    Object *ArgsObj = TheHeap.newArray(SourceLoc::invalid(), Args);
    // `arguments` is array-like; reuse the array representation.
    ArgsObj->setProto(Protos.ObjectP);
    Env->define(Ctx.SymArguments, Value::object(ArgsObj));
  }
  const std::vector<VarDecl *> &Params = Def->params();
  for (size_t I = 0, E = Params.size(); I != E; ++I)
    Env->define(Params[I]->name(),
                I < Args.size() ? Args[I] : Value::undefined());
  // Self-binding for named function expressions / declarations.
  if (Def->name() != InvalidSymbol && !Def->isModule() &&
      !Env->hasOwn(Def->name()))
    Env->define(Def->name(), Value::object(Fn));
  // Hoist `var` declarations and nested function declarations.
  for (VarDecl *D : Def->hoistedVars())
    if (!Env->hasOwn(D->name()))
      Env->define(D->name(), Value::undefined());
  for (FunctionDeclStmt *FD : Def->hoistedFuncs())
    Env->define(FD->decl()->name(),
                makeClosure(FD->def(), Env, FD->def()->loc()));

  if (Obs)
    Obs->onCall(CallSite, Def);

  ++CallDepth;
  Completion C = executeBody(Def, Env);
  --CallDepth;

  switch (C.Kind) {
  case CompletionKind::Return:
    return Completion::normal(C.V);
  case CompletionKind::Normal:
  case CompletionKind::Break:   // Stray break/continue degrade to undefined.
  case CompletionKind::Continue:
    return Completion::normal(Value::undefined());
  case CompletionKind::Throw:
  case CompletionKind::Abort:
    return C;
  }
  return Completion::normal(Value::undefined());
}

Completion Interpreter::callFunctionForced(Object *Fn) {
  assert(Opts.ApproxMode && "forced execution requires approx mode");
  FunctionDef *Def = Fn->functionDef();
  assert(Def && "forcing a non-closure");
  resetExecutionBudget();
  BudgetHit = false;

  // f.apply(w, p*): every parameter and `arguments` become p*; `this` is
  // the inferred receiver or p* (Section 3).
  Value ThisV =
      Fn->approxThis() ? Value::object(Fn->approxThis()) : proxyValue();
  std::vector<Value> Args(Def->params().size(), proxyValue());

  Environment *Env = TheHeap.newEnvironment(Fn->closureEnv());
  AstContext &Ctx = context();
  if (!Def->isArrow()) {
    Env->define(Ctx.SymThis, ThisV);
    Env->define(Ctx.SymArguments, proxyValue());
  }
  for (size_t I = 0, E = Def->params().size(); I != E; ++I)
    Env->define(Def->params()[I]->name(), Args[I]);
  if (Def->name() != InvalidSymbol && !Def->isModule() &&
      !Env->hasOwn(Def->name()))
    Env->define(Def->name(), Value::object(Fn));
  for (VarDecl *D : Def->hoistedVars())
    if (!Env->hasOwn(D->name()))
      Env->define(D->name(), Value::undefined());
  for (FunctionDeclStmt *FD : Def->hoistedFuncs())
    Env->define(FD->decl()->name(),
                makeClosure(FD->def(), Env, FD->def()->loc()));

  if (Obs)
    Obs->onCall(SourceLoc::invalid(), Def);

  ++CallDepth;
  Completion C = executeBody(Def, Env);
  --CallDepth;
  if (C.Kind == CompletionKind::Return)
    return Completion::normal(C.V);
  return C;
}

Completion Interpreter::construct(const Value &Callee, std::vector<Value> Args,
                                  SourceLoc AllocLoc, SourceLoc CallSite) {
  if (!Callee.isObject() || Callee.asObject()->isProxy()) {
    if (Opts.ApproxMode)
      return proxyValue();
    return throwError("TypeError", "constructor is not a function at " +
                                       context().files().format(CallSite));
  }
  Object *Fn = Callee.asObject();
  if (!Fn->isCallable()) {
    if (Opts.ApproxMode)
      return proxyValue();
    return throwError("TypeError", "constructor is not a function at " +
                                       context().files().format(CallSite));
  }
  // Allocate the instance with the constructor's prototype.
  Object *ProtoObj = Protos.ObjectP;
  if (auto P = Fn->getOwn(context().SymPrototype); P && P->isObject())
    ProtoObj = P->asObject();
  bool InEval = Fn->functionDef() && Fn->functionDef()->isInEval();
  Object *Instance = TheHeap.newObject(
      ObjectClass::Plain, InEval ? SourceLoc::invalid() : AllocLoc, ProtoObj);
  if (Obs)
    Obs->onObjectCreated(Instance);

  Completion C =
      callValue(Callee, Value::object(Instance), std::move(Args), CallSite);
  JSAI_PROPAGATE(C);
  if (C.V.isObject() && !C.V.asObject()->isProxy())
    return C; // Constructor returned an explicit object.
  return Value::object(Instance);
}

//===----------------------------------------------------------------------===//
// Modules
//===----------------------------------------------------------------------===//

Completion Interpreter::loadModule(const std::string &Path) {
  std::string Norm = FileSystem::normalizePath(Path);
  if (auto It = ModuleExports.find(Norm); It != ModuleExports.end()) {
    // Cached (or currently loading; partial exports break cycles).
    return getProperty(It->second, context().SymExports, SourceLoc::invalid());
  }
  Module *M = context().findModule(Norm);
  if (!M)
    return throwError("Error", "cannot find module '" + Norm + "'");

  AstContext &Ctx = context();
  SourceLoc ModLoc(M->File, 0, 0);
  // The default exports object; line 0 marks it as the implicit per-module
  // allocation (distinct from any real site in the file).
  Object *Exports =
      TheHeap.newObject(ObjectClass::Plain, SourceLoc(M->File, 0, 1));
  Exports->setProto(Protos.ObjectP);
  if (Obs)
    Obs->onObjectCreated(Exports);
  // (file, 0, 2): the `module` object's reserved allocation site.
  Object *ModObj =
      TheHeap.newObject(ObjectClass::Module, SourceLoc(M->File, 0, 2));
  ModObj->setProto(Protos.ObjectP);
  ModObj->setOwn(Ctx.SymExports, Value::object(Exports));
  ModObj->setOwn(Ctx.WK.Id, Value::str(Norm));
  ModuleExports[Norm] = Value::object(ModObj);

  std::string FromPath = Norm;
  Object *RequireFn = TheHeap.newNative(
      "require",
      [FromPath](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        if (Args.empty() || !Args[0].isString()) {
          if (!Args.empty() && I.isProxyValue(Args[0]))
            return I.proxyValue(); // Unknown dynamic module name.
          return I.throwError("TypeError", "require expects a string");
        }
        return I.requireFrom(FromPath, Args[0].asString(),
                             I.currentCallSite());
      });
  RequireFn->setProto(Protos.FunctionP);

  Value ModuleFn = makeClosure(M->Func, GlobalEnv, ModLoc);
  std::vector<Value> Args = {Value::object(Exports), Value::object(RequireFn),
                             Value::object(ModObj)};
  Completion C = callValue(ModuleFn, Value::object(Exports), std::move(Args),
                           SourceLoc::invalid());
  if (C.isThrow() || C.isAbort())
    return C;
  return getProperty(Value::object(ModObj), Ctx.SymExports,
                     SourceLoc::invalid());
}

Completion Interpreter::requireFrom(const std::string &FromPath,
                                    const std::string &Spec,
                                    SourceLoc CallSite) {
  if (Module *M = Loader.resolve(FromPath, Spec)) {
    if (Obs)
      Obs->onModuleRequired(CallSite, M->Path);
    return loadModule(M->Path);
  }
  if (auto It = BuiltinModules.find(Spec); It != BuiltinModules.end())
    return It->second;
  if (Opts.ApproxMode)
    return proxyValue();
  return throwError("Error", "cannot find module '" + Spec + "' from '" +
                                 FromPath + "'");
}

//===----------------------------------------------------------------------===//
// eval
//===----------------------------------------------------------------------===//

Completion Interpreter::runEval(const std::string &Code, Environment *Env,
                                FunctionDef *EnclosingFunc,
                                SourceLoc CallSite) {
  if (!stepBudget())
    return Completion::abort();
  if (Obs)
    Obs->onEvalCode(CallSite, Code);
  Parser EvalParser(context(), Loader.diagnostics());
  FunctionDef *F = EvalParser.parseEval(Code, EnclosingFunc, CallSite);
  if (!F)
    return throwError("SyntaxError", "invalid code passed to eval");
  ScopeResolver(context()).resolveFunction(F);

  Environment *EvalEnv = TheHeap.newEnvironment(Env);
  return runEvalBody(F, EvalEnv);
}

Completion Interpreter::runEvalBody(FunctionDef *F, Environment *Env) {
  for (VarDecl *D : F->hoistedVars())
    if (!Env->hasOwn(D->name()))
      Env->define(D->name(), Value::undefined());
  for (FunctionDeclStmt *FD : F->hoistedFuncs())
    Env->define(FD->decl()->name(),
                makeClosure(FD->def(), Env, FD->def()->loc()));
  Completion C = executeBody(F, Env);
  if (C.Kind == CompletionKind::Throw || C.Kind == CompletionKind::Abort)
    return C;
  // MiniJS simplification: eval's completion value is undefined.
  return Value::undefined();
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

void Interpreter::assignVariable(Symbol Name, const Value &V,
                                 Environment *Env) {
  if (!Env->assign(Name, V))
    GlobalEnv->define(Name, V); // Sloppy-mode implicit global.
}

Completion Interpreter::evalExpr(Expr *E, Environment *Env, FunctionDef *F) {
  if (!stepBudget())
    return Completion::abort();

  switch (E->kind()) {
  case NodeKind::NumberLit:
    return Value::number(cast<NumberLit>(E)->value());
  case NodeKind::StringLit:
    return Value::str(strings().str(cast<StringLit>(E)->value()));
  case NodeKind::BoolLit:
    return Value::boolean(cast<BoolLit>(E)->value());
  case NodeKind::NullLit:
    return Value::null();
  case NodeKind::UndefinedLit:
    return Value::undefined();
  case NodeKind::Ident: {
    auto *I = cast<Ident>(E);
    if (Value *Slot = Env->lookup(I->name()))
      return *Slot;
    if (Opts.ApproxMode)
      return proxyValue(); // Unknown globals become p*.
    return throwError("ReferenceError", strings().str(I->name()) +
                                            " is not defined at " +
                                            context().files().format(E->loc()));
  }
  case NodeKind::This: {
    if (Value *Slot = Env->lookup(context().SymThis))
      return *Slot;
    return Opts.ApproxMode ? Completion(proxyValue())
                           : Completion(Value::undefined());
  }
  case NodeKind::ObjectLit:
    return evalObjectLit(cast<ObjectLit>(E), Env, F);
  case NodeKind::ArrayLit: {
    auto *A = cast<ArrayLit>(E);
    std::vector<Value> Elements;
    Elements.reserve(A->elements().size());
    for (Expr *El : A->elements()) {
      Completion C = evalExpr(El, Env, F);
      JSAI_PROPAGATE(C);
      Elements.push_back(C.V);
    }
    SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : A->loc();
    Object *Arr = TheHeap.newArray(Birth, std::move(Elements));
    Arr->setProto(Protos.ArrayP);
    if (Obs)
      Obs->onObjectCreated(Arr);
    return Value::object(Arr);
  }
  case NodeKind::FunctionExpr: {
    auto *FE = cast<FunctionExpr>(E);
    return makeClosure(FE->def(), Env, FE->loc());
  }
  case NodeKind::Unary:
    return evalUnary(cast<UnaryExpr>(E), Env, F);
  case NodeKind::Binary:
    return evalBinary(cast<BinaryExpr>(E), Env, F);
  case NodeKind::Logical: {
    auto *L = cast<LogicalExpr>(E);
    Completion Lhs = evalExpr(L->lhs(), Env, F);
    JSAI_PROPAGATE(Lhs);
    switch (L->op()) {
    case LogicalOp::And:
      if (!Lhs.V.toBoolean())
        return Lhs;
      break;
    case LogicalOp::Or:
      if (Lhs.V.toBoolean())
        return Lhs;
      break;
    case LogicalOp::Nullish:
      if (!Lhs.V.isNullish())
        return Lhs;
      break;
    }
    return evalExpr(L->rhs(), Env, F);
  }
  case NodeKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    Completion Cond = evalExpr(C->cond(), Env, F);
    JSAI_PROPAGATE(Cond);
    return evalExpr(Cond.V.toBoolean() ? C->thenExpr() : C->elseExpr(), Env,
                    F);
  }
  case NodeKind::Assign:
    return evalAssign(cast<AssignExpr>(E), Env, F);
  case NodeKind::Update:
    return evalUpdate(cast<UpdateExpr>(E), Env, F);
  case NodeKind::Call:
    return evalCall(cast<CallExpr>(E), Env, F);
  case NodeKind::New: {
    auto *N = cast<NewExpr>(E);
    Completion Callee = evalExpr(N->callee(), Env, F);
    JSAI_PROPAGATE(Callee);
    std::vector<Value> Args;
    Args.reserve(N->args().size());
    for (Expr *A : N->args()) {
      Completion C = evalExpr(A, Env, F);
      JSAI_PROPAGATE(C);
      Args.push_back(C.V);
    }
    SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : N->loc();
    return construct(Callee.V, std::move(Args), Birth, N->loc());
  }
  case NodeKind::Member:
    return evalMember(cast<MemberExpr>(E), Env, F);
  case NodeKind::Sequence: {
    auto *S = cast<SequenceExpr>(E);
    Value Last;
    for (Expr *X : S->exprs()) {
      Completion C = evalExpr(X, Env, F);
      JSAI_PROPAGATE(C);
      Last = C.V;
    }
    return Last;
  }
  default:
    assert(false && "statement node in expression evaluation");
    return Value::undefined();
  }
}

Completion Interpreter::evalObjectLit(ObjectLit *O, Environment *Env,
                                      FunctionDef *F) {
  SourceLoc Birth = F->isInEval() ? SourceLoc::invalid() : O->loc();
  Object *Obj = TheHeap.newObject(ObjectClass::Plain, Birth, Protos.ObjectP);
  if (Obs)
    Obs->onObjectCreated(Obj);
  for (const ObjectProperty &P : O->properties()) {
    Completion V = evalExpr(P.Value, Env, F);
    JSAI_PROPAGATE(V);
    if (P.PKind != PropertyKind::Value) {
      Object *Accessor =
          V.V.isObject() && V.V.asObject()->isCallable() ? V.V.asObject()
                                                         : nullptr;
      if (P.PKind == PropertyKind::Getter)
        Obj->setAccessor(P.Key, Accessor, nullptr);
      else
        Obj->setAccessor(P.Key, nullptr, Accessor);
      continue;
    }
    if (P.KeyExpr) {
      Completion K = evalExpr(P.KeyExpr, Env, F);
      JSAI_PROPAGATE(K);
      std::optional<Symbol> Key = propertyKeySym(K.V);
      if (!Key)
        continue; // Unknown (proxy) key: skip the write.
      if (Obs)
        Obs->onDynamicWrite(P.KeyExpr->loc(), Obj, strings().str(*Key), V.V);
      setProperty(Value::object(Obj), *Key, V.V, P.KeyExpr->loc());
      continue;
    }
    Obj->setOwn(P.Key, V.V);
  }
  return Value::object(Obj);
}

Completion Interpreter::evalMember(MemberExpr *M, Environment *Env,
                                   FunctionDef *F) {
  Completion Base = evalExpr(M->object(), Env, F);
  JSAI_PROPAGATE(Base);
  if (!M->isComputed()) {
    return getProperty(Base.V, M->name(), M->loc(), M->id());
  }
  Completion Index = evalExpr(M->index(), Env, F);
  JSAI_PROPAGATE(Index);
  std::optional<Symbol> Key = propertyKeySym(Index.V);
  if (!Key)
    return proxyValue(); // Unknown property name.
  if (Opts.ApproxMode && isProxyValue(Base.V)) {
    // Known name, unknown base: record for the Section 6 extension.
    if (Obs)
      Obs->onProxyBaseRead(M->loc(), strings().str(*Key));
    return getProperty(Base.V, *Key, M->loc());
  }
  Completion Result = getProperty(Base.V, *Key, M->loc());
  JSAI_PROPAGATE(Result);
  if (Obs)
    Obs->onDynamicRead(M->loc(), strings().str(*Key), Result.V);
  return Result;
}

/// Applies a binary arithmetic step for compound assignment / binary ops.
Value Interpreter::applyArithOp(AssignOp Op, const Value &Old,
                                const Value &Rhs) {
  switch (Op) {
  case AssignOp::Add: {
    if (Old.isString() || Rhs.isString() ||
        (Old.isObject() && !Old.asObject()->isProxy()) ||
        (Rhs.isObject() && !Rhs.asObject()->isProxy()))
      return Value::str(toStringValue(Old) + toStringValue(Rhs));
    return Value::number(toNumberValue(Old) + toNumberValue(Rhs));
  }
  case AssignOp::Sub:
    return Value::number(toNumberValue(Old) - toNumberValue(Rhs));
  case AssignOp::Mul:
    return Value::number(toNumberValue(Old) * toNumberValue(Rhs));
  case AssignOp::Div:
    return Value::number(toNumberValue(Old) / toNumberValue(Rhs));
  default:
    return Rhs;
  }
}

/// The value step of a compound assignment once both sides are known:
/// `a ||= b` takes the rhs (the short-circuit happened earlier), proxies
/// contaminate, everything else is applyArithOp.
Value Interpreter::combineCompound(AssignOp Op, const Value &Old,
                                   const Value &Rhs) {
  if (Op == AssignOp::OrOr)
    return Rhs;
  if (Opts.ApproxMode && (isProxyValue(Old) || isProxyValue(Rhs)))
    return proxyValue();
  return applyArithOp(Op, Old, Rhs);
}

/// `++`/`--` value step (proxies contaminate).
Value Interpreter::bumpValue(bool IsIncrement, const Value &Old) {
  if (Opts.ApproxMode && isProxyValue(Old))
    return proxyValue();
  double N = toNumberValue(Old);
  return Value::number(IsIncrement ? N + 1 : N - 1);
}

Completion Interpreter::evalAssign(AssignExpr *A, Environment *Env,
                                   FunctionDef *F) {
  // Identifier target.
  if (auto *I = dyn_cast<Ident>(A->target())) {
    Value NewV;
    if (A->op() == AssignOp::Assign) {
      Completion V = evalExpr(A->value(), Env, F);
      JSAI_PROPAGATE(V);
      NewV = V.V;
    } else {
      Value Old;
      if (Value *Slot = Env->lookup(I->name()))
        Old = *Slot;
      else if (Opts.ApproxMode)
        Old = proxyValue();
      if (A->op() == AssignOp::OrOr && Old.toBoolean())
        return Old;
      Completion V = evalExpr(A->value(), Env, F);
      JSAI_PROPAGATE(V);
      NewV = combineCompound(A->op(), Old, V.V);
    }
    assignVariable(I->name(), NewV, Env);
    return NewV;
  }

  // Member target.
  auto *M = cast<MemberExpr>(A->target());
  Completion Base = evalExpr(M->object(), Env, F);
  JSAI_PROPAGATE(Base);

  std::optional<Symbol> Key;
  SourceLoc KeyLoc = M->loc();
  bool Computed = M->isComputed();
  // Only fixed-name sites carry an inline cache: its slot is valid for one
  // property name, which a computed site changes per execution.
  uint32_t CacheId = Computed ? NoCache : M->id();
  if (Computed) {
    Completion Index = evalExpr(M->index(), Env, F);
    JSAI_PROPAGATE(Index);
    Key = propertyKeySym(Index.V);
  } else {
    Key = M->name();
  }

  Value NewV;
  if (A->op() == AssignOp::Assign) {
    Completion V = evalExpr(A->value(), Env, F);
    JSAI_PROPAGATE(V);
    NewV = V.V;
  } else {
    Value Old;
    if (Key) {
      Completion OldC = getProperty(Base.V, *Key, KeyLoc, CacheId);
      JSAI_PROPAGATE(OldC);
      Old = OldC.V;
    } else {
      Old = proxyValue();
    }
    if (A->op() == AssignOp::OrOr && Old.toBoolean())
      return Old;
    Completion V = evalExpr(A->value(), Env, F);
    JSAI_PROPAGATE(V);
    NewV = combineCompound(A->op(), Old, V.V);
  }

  if (!Key)
    return NewV; // Unknown (proxy) property name: skip the write.

  if (Computed) {
    if (Obs && Base.V.isObject())
      Obs->onDynamicWrite(M->loc(), Base.V.asObject(), strings().str(*Key),
                          NewV);
  } else if (Opts.ApproxMode && NewV.isObject()) {
    // Static property write: infer the receiver for later forced execution
    // (the paper's `this` map), wrapped to delegate unknowns to p*.
    Object *Written = NewV.asObject();
    if (Written->functionDef() && !Written->approxThis() &&
        Base.V.isObject() && !Base.V.asObject()->isProxy())
      Written->setApproxThis(makeReceiverProxy(Base.V.asObject()));
  }
  Completion W = setProperty(Base.V, *Key, NewV, KeyLoc, CacheId);
  JSAI_PROPAGATE(W);
  return NewV;
}

Completion Interpreter::evalUpdate(UpdateExpr *U, Environment *Env,
                                   FunctionDef *F) {
  auto Bump = [&](const Value &Old) -> Value {
    return bumpValue(U->isIncrement(), Old);
  };
  if (auto *I = dyn_cast<Ident>(U->target())) {
    Value Old;
    if (Value *Slot = Env->lookup(I->name()))
      Old = *Slot;
    else if (Opts.ApproxMode)
      Old = proxyValue();
    else
      return throwError("ReferenceError",
                        strings().str(I->name()) + " is not defined");
    Value NewV = Bump(Old);
    assignVariable(I->name(), NewV, Env);
    if (U->isPrefix())
      return NewV;
    return isProxyValue(Old) ? Old : Value::number(toNumberValue(Old));
  }
  auto *M = cast<MemberExpr>(U->target());
  Completion Base = evalExpr(M->object(), Env, F);
  JSAI_PROPAGATE(Base);
  std::optional<Symbol> Key;
  uint32_t CacheId = M->isComputed() ? NoCache : M->id();
  if (M->isComputed()) {
    Completion Index = evalExpr(M->index(), Env, F);
    JSAI_PROPAGATE(Index);
    Key = propertyKeySym(Index.V);
  } else {
    Key = M->name();
  }
  if (!Key)
    return proxyValue();
  Completion OldC = getProperty(Base.V, *Key, M->loc(), CacheId);
  JSAI_PROPAGATE(OldC);
  Value NewV = Bump(OldC.V);
  if (M->isComputed() && Obs && Base.V.isObject())
    Obs->onDynamicWrite(M->loc(), Base.V.asObject(), strings().str(*Key),
                        NewV);
  Completion W = setProperty(Base.V, *Key, NewV, M->loc(), CacheId);
  JSAI_PROPAGATE(W);
  if (U->isPrefix())
    return NewV;
  return isProxyValue(OldC.V) ? OldC.V
                              : Value::number(toNumberValue(OldC.V));
}

Completion Interpreter::evalUnary(UnaryExpr *U, Environment *Env,
                                  FunctionDef *F) {
  // `typeof x` must not throw on unresolved identifiers.
  if (U->op() == UnaryOp::Typeof) {
    if (auto *I = dyn_cast<Ident>(U->operand())) {
      if (Value *Slot = Env->lookup(I->name())) {
        if (isProxyValue(*Slot))
          return Value::str("function"); // Deterministic choice for p*.
        return Value::str(Slot->typeOf());
      }
      if (Opts.ApproxMode)
        return Value::str("function");
      return Value::str("undefined");
    }
    Completion C = evalExpr(U->operand(), Env, F);
    JSAI_PROPAGATE(C);
    if (isProxyValue(C.V))
      return Value::str("function");
    return Value::str(C.V.typeOf());
  }

  if (U->op() == UnaryOp::Delete) {
    if (auto *M = dyn_cast<MemberExpr>(U->operand())) {
      Completion Base = evalExpr(M->object(), Env, F);
      JSAI_PROPAGATE(Base);
      std::optional<Symbol> Key;
      if (M->isComputed()) {
        Completion Index = evalExpr(M->index(), Env, F);
        JSAI_PROPAGATE(Index);
        Key = propertyKeySym(Index.V);
      } else {
        Key = M->name();
      }
      return deleteMemberOnValue(Base.V, Key);
    }
    return Value::boolean(true);
  }

  Completion C = evalExpr(U->operand(), Env, F);
  JSAI_PROPAGATE(C);
  return applyUnaryValueOp(U->op(), C.V);
}

/// `delete base[key]` once base and key are known.
Value Interpreter::deleteMemberOnValue(const Value &Base,
                                       const std::optional<Symbol> &Key) {
  if (!Key || !Base.isObject() || Base.asObject()->isProxy())
    return Value::boolean(true);
  Object *O = Base.asObject();
  size_t Index;
  if (O->objectClass() == ObjectClass::Array &&
      isArrayIndex(strings().str(*Key), Index)) {
    if (Index < O->elements().size())
      O->elements()[Index] = Value::undefined();
    return Value::boolean(true);
  }
  return Value::boolean(O->deleteOwn(*Key));
}

/// Value-consuming unary operators (everything but typeof/delete, which
/// never evaluate their operand the same way).
Value Interpreter::applyUnaryValueOp(UnaryOp Op, const Value &V) {
  if (Opts.ApproxMode && isProxyValue(V)) {
    if (Op == UnaryOp::Not)
      return Value::boolean(false); // p* is truthy.
    if (Op == UnaryOp::Void)
      return Value::undefined();
    return proxyValue();
  }
  switch (Op) {
  case UnaryOp::Neg:
    return Value::number(-toNumberValue(V));
  case UnaryOp::Plus:
    return Value::number(toNumberValue(V));
  case UnaryOp::Not:
    return Value::boolean(!V.toBoolean());
  case UnaryOp::BitNot:
    return Value::number(double(~toInt32(toNumberValue(V))));
  case UnaryOp::Void:
    return Value::undefined();
  case UnaryOp::Typeof:
  case UnaryOp::Delete:
    break; // Handled by the callers.
  }
  return Value::undefined();
}

/// Simplified ECMAScript loose equality.
static bool looseEquals(Interpreter &I, const Value &A, const Value &B) {
  if (A.kind() == B.kind())
    return Value::strictEquals(A, B);
  if (A.isNullish() && B.isNullish())
    return true;
  if (A.isNullish() || B.isNullish())
    return false;
  if (A.isObject() || B.isObject()) {
    // Object vs primitive: compare via ToPrimitive (string) conversion.
    if (A.isObject() && A.asObject()->isProxy())
      return false;
    if (B.isObject() && B.asObject()->isProxy())
      return false;
    if (B.isString() || A.isString())
      return I.toStringValue(A) == I.toStringValue(B);
    return I.toNumberValue(A) == I.toNumberValue(B);
  }
  // number/string/boolean mix: numeric comparison.
  return I.toNumberValue(A) == I.toNumberValue(B);
}

Completion Interpreter::evalBinary(BinaryExpr *B, Environment *Env,
                                   FunctionDef *F) {
  Completion L = evalExpr(B->lhs(), Env, F);
  JSAI_PROPAGATE(L);
  Completion R = evalExpr(B->rhs(), Env, F);
  JSAI_PROPAGATE(R);
  return applyBinaryValueOp(B->op(), L.V, R.V);
}

/// Binary operator semantics once both operands are values. Pure apart
/// from string interning: never throws, charges no steps.
Value Interpreter::applyBinaryValueOp(BinaryOp Op, const Value &A,
                                      const Value &C) {
  bool AnyProxy =
      Opts.ApproxMode && (isProxyValue(A) || isProxyValue(C));

  switch (Op) {
  case BinaryOp::Add:
    if (AnyProxy)
      return proxyValue(); // Contamination keeps unknowns unknown.
    return applyArithOp(AssignOp::Add, A, C);
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod: {
    if (AnyProxy)
      return proxyValue();
    double X = toNumberValue(A), Y = toNumberValue(C);
    switch (Op) {
    case BinaryOp::Sub:
      return Value::number(X - Y);
    case BinaryOp::Mul:
      return Value::number(X * Y);
    case BinaryOp::Div:
      return Value::number(X / Y);
    default:
      return Value::number(jsNumberMod(X, Y));
    }
  }
  case BinaryOp::EqStrict:
    return Value::boolean(Value::strictEquals(A, C));
  case BinaryOp::NeStrict:
    return Value::boolean(!Value::strictEquals(A, C));
  case BinaryOp::EqLoose:
    if (AnyProxy)
      return Value::boolean(Value::strictEquals(A, C));
    return Value::boolean(looseEquals(*this, A, C));
  case BinaryOp::NeLoose:
    if (AnyProxy)
      return Value::boolean(!Value::strictEquals(A, C));
    return Value::boolean(!looseEquals(*this, A, C));
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge: {
    if (AnyProxy)
      return Value::boolean(false); // Ends proxy-bounded loops promptly.
    if (A.isString() && C.isString()) {
      int Cmp = A.asString().compare(C.asString());
      switch (Op) {
      case BinaryOp::Lt:
        return Value::boolean(Cmp < 0);
      case BinaryOp::Le:
        return Value::boolean(Cmp <= 0);
      case BinaryOp::Gt:
        return Value::boolean(Cmp > 0);
      default:
        return Value::boolean(Cmp >= 0);
      }
    }
    double X = toNumberValue(A), Y = toNumberValue(C);
    if (std::isnan(X) || std::isnan(Y))
      return Value::boolean(false);
    switch (Op) {
    case BinaryOp::Lt:
      return Value::boolean(X < Y);
    case BinaryOp::Le:
      return Value::boolean(X <= Y);
    case BinaryOp::Gt:
      return Value::boolean(X > Y);
    default:
      return Value::boolean(X >= Y);
    }
  }
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor:
  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    if (AnyProxy)
      return proxyValue();
    int32_t X = toInt32(toNumberValue(A)), Y = toInt32(toNumberValue(C));
    switch (Op) {
    case BinaryOp::BitAnd:
      return Value::number(double(X & Y));
    case BinaryOp::BitOr:
      return Value::number(double(X | Y));
    case BinaryOp::BitXor:
      return Value::number(double(X ^ Y));
    case BinaryOp::Shl:
      return Value::number(double(X << (Y & 31)));
    default:
      return Value::number(double(X >> (Y & 31)));
    }
  }
  case BinaryOp::In: {
    if (AnyProxy)
      return Value::boolean(false);
    if (!C.isObject())
      return Value::boolean(false);
    std::optional<Symbol> Key = propertyKeySym(A);
    if (!Key)
      return Value::boolean(false);
    Object *O = C.asObject();
    size_t Index;
    if (O->objectClass() == ObjectClass::Array &&
        isArrayIndex(strings().str(*Key), Index))
      return Value::boolean(Index < O->elements().size());
    if (*Key == context().SymLength &&
        O->objectClass() == ObjectClass::Array)
      return Value::boolean(true);
    return Value::boolean(O->has(*Key));
  }
  case BinaryOp::Instanceof: {
    if (AnyProxy || !A.isObject() || !C.isObject() ||
        !C.asObject()->isCallable())
      return Value::boolean(false);
    auto ProtoV = C.asObject()->getOwn(context().SymPrototype);
    if (!ProtoV || !ProtoV->isObject())
      return Value::boolean(false);
    for (Object *O = A.asObject()->proto(); O; O = O->proto())
      if (O == ProtoV->asObject())
        return Value::boolean(true);
    return Value::boolean(false);
  }
  }
  return Value::undefined();
}

Completion Interpreter::evalCall(CallExpr *C, Environment *Env,
                                 FunctionDef *F) {
  // Direct eval.
  if (auto *I = dyn_cast<Ident>(C->callee());
      I && I->name() == context().WK.Eval && !I->decl()) {
    if (C->args().empty())
      return Value::undefined();
    Completion Arg = evalExpr(C->args()[0], Env, F);
    JSAI_PROPAGATE(Arg);
    if (isProxyValue(Arg.V))
      return proxyValue();
    if (!Arg.V.isString())
      return Arg; // eval of a non-string returns it unchanged.
    return runEval(Arg.V.asString(), Env, F, C->loc());
  }

  Value Callee;
  Value ThisV;
  if (auto *M = dyn_cast<MemberExpr>(C->callee())) {
    Completion Base = evalExpr(M->object(), Env, F);
    JSAI_PROPAGATE(Base);
    ThisV = Base.V;
    std::optional<Symbol> Key;
    uint32_t CacheId = M->isComputed() ? NoCache : M->id();
    if (M->isComputed()) {
      Completion Index = evalExpr(M->index(), Env, F);
      JSAI_PROPAGATE(Index);
      Key = propertyKeySym(Index.V);
    } else {
      Key = M->name();
    }
    if (!Key) {
      Callee = proxyValue();
    } else {
      Completion Fn = getProperty(Base.V, *Key, M->loc(), CacheId);
      JSAI_PROPAGATE(Fn);
      if (M->isComputed() && Obs) {
        if (Opts.ApproxMode && isProxyValue(Base.V))
          Obs->onProxyBaseRead(M->loc(), strings().str(*Key));
        else
          Obs->onDynamicRead(M->loc(), strings().str(*Key), Fn.V);
      }
      Callee = Fn.V;
    }
  } else {
    Completion Fn = evalExpr(C->callee(), Env, F);
    JSAI_PROPAGATE(Fn);
    Callee = Fn.V;
  }

  std::vector<Value> Args;
  Args.reserve(C->args().size());
  for (Expr *A : C->args()) {
    Completion AC = evalExpr(A, Env, F);
    JSAI_PROPAGATE(AC);
    Args.push_back(AC.V);
  }
  return callValue(Callee, ThisV, std::move(Args), C->loc());
}

//===----------------------------------------------------------------------===//
// Statement execution
//===----------------------------------------------------------------------===//

Completion Interpreter::execBlockBody(const std::vector<Stmt *> &Body,
                                      Environment *Env, FunctionDef *F) {
  for (Stmt *S : Body) {
    Completion C = execStmt(S, Env, F);
    JSAI_PROPAGATE(C);
  }
  return Completion::normal();
}

/// Snapshot of the iteration values of `for (x in/of O)`.
std::vector<Value> Interpreter::forInItems(ForInStmt *L, Object *O) {
  std::vector<Value> Items;
  bool IsArrayLike = O->objectClass() == ObjectClass::Array ||
                     O->objectClass() == ObjectClass::Arguments;
  if (L->isOf()) {
    if (IsArrayLike)
      Items = O->elements();
  } else {
    if (IsArrayLike)
      for (size_t I = 0, E = O->elements().size(); I != E; ++I)
        Items.push_back(Value::str(jsNumberToString(double(I))));
    for (Symbol Key : O->ownKeys())
      Items.push_back(Value::str(strings().str(Key)));
  }
  return Items;
}

Completion Interpreter::evalForIn(ForInStmt *L, Environment *Env,
                                  FunctionDef *F) {
  Completion ObjC = evalExpr(L->object(), Env, F);
  JSAI_PROPAGATE(ObjC);
  if (!ObjC.V.isObject())
    return Completion::normal();
  Object *O = ObjC.V.asObject();
  if (O->isProxy())
    return Completion::normal(); // Zero iterations over unknowns.

  std::vector<Value> Items = forInItems(L, O);

  for (const Value &Item : Items) {
    if (!loopBudget())
      return Completion::abort();
    if (L->decl())
      assignVariable(L->decl()->name(), Item, Env);
    else if (auto *I = dyn_cast<Ident>(L->target()))
      assignVariable(I->name(), Item, Env);
    else if (auto *M = dyn_cast<MemberExpr>(L->target())) {
      Completion Base = evalExpr(M->object(), Env, F);
      JSAI_PROPAGATE(Base);
      if (!M->isComputed()) {
        Completion W =
            setProperty(Base.V, M->name(), Item, M->loc(), M->id());
        JSAI_PROPAGATE(W);
      }
    }
    Completion C = execStmt(L->body(), Env, F);
    if (C.Kind == CompletionKind::Break)
      break;
    if (C.Kind == CompletionKind::Continue)
      continue;
    JSAI_PROPAGATE(C);
  }
  return Completion::normal();
}

Completion Interpreter::execStmt(Stmt *S, Environment *Env, FunctionDef *F) {
  if (!stepBudget())
    return Completion::abort();

  switch (S->kind()) {
  case NodeKind::ExprStmt: {
    Completion C = evalExpr(cast<ExprStmt>(S)->expr(), Env, F);
    JSAI_PROPAGATE(C);
    return Completion::normal();
  }
  case NodeKind::VarDeclStmt: {
    for (const VarDeclarator &D : cast<VarDeclStmt>(S)->declarators()) {
      if (!D.Init)
        continue;
      Completion C = evalExpr(D.Init, Env, F);
      JSAI_PROPAGATE(C);
      assignVariable(D.Decl->name(), C.V, Env);
    }
    return Completion::normal();
  }
  case NodeKind::FunctionDeclStmt:
    return Completion::normal(); // Hoisted at function entry.
  case NodeKind::Block:
    return execBlockBody(cast<BlockStmt>(S)->body(), Env, F);
  case NodeKind::If: {
    auto *I = cast<IfStmt>(S);
    Completion Cond = evalExpr(I->cond(), Env, F);
    JSAI_PROPAGATE(Cond);
    if (Cond.V.toBoolean())
      return execStmt(I->thenStmt(), Env, F);
    if (I->elseStmt())
      return execStmt(I->elseStmt(), Env, F);
    return Completion::normal();
  }
  case NodeKind::While: {
    auto *W = cast<WhileStmt>(S);
    while (true) {
      if (!loopBudget())
        return Completion::abort();
      Completion Cond = evalExpr(W->cond(), Env, F);
      JSAI_PROPAGATE(Cond);
      if (!Cond.V.toBoolean())
        break;
      Completion C = execStmt(W->body(), Env, F);
      if (C.Kind == CompletionKind::Break)
        break;
      if (C.Kind == CompletionKind::Continue)
        continue;
      JSAI_PROPAGATE(C);
    }
    return Completion::normal();
  }
  case NodeKind::DoWhile: {
    auto *W = cast<DoWhileStmt>(S);
    while (true) {
      if (!loopBudget())
        return Completion::abort();
      Completion C = execStmt(W->body(), Env, F);
      if (C.Kind == CompletionKind::Break)
        break;
      if (C.Kind != CompletionKind::Continue)
        JSAI_PROPAGATE(C);
      Completion Cond = evalExpr(W->cond(), Env, F);
      JSAI_PROPAGATE(Cond);
      if (!Cond.V.toBoolean())
        break;
    }
    return Completion::normal();
  }
  case NodeKind::For: {
    auto *L = cast<ForStmt>(S);
    if (L->init()) {
      Completion C = execStmt(L->init(), Env, F);
      JSAI_PROPAGATE(C);
    }
    while (true) {
      if (!loopBudget())
        return Completion::abort();
      if (L->cond()) {
        Completion Cond = evalExpr(L->cond(), Env, F);
        JSAI_PROPAGATE(Cond);
        if (!Cond.V.toBoolean())
          break;
      }
      Completion C = execStmt(L->body(), Env, F);
      if (C.Kind == CompletionKind::Break)
        break;
      if (C.Kind != CompletionKind::Continue)
        JSAI_PROPAGATE(C);
      if (L->step()) {
        Completion Step = evalExpr(L->step(), Env, F);
        JSAI_PROPAGATE(Step);
      }
    }
    return Completion::normal();
  }
  case NodeKind::ForIn:
    return evalForIn(cast<ForInStmt>(S), Env, F);
  case NodeKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (!R->value())
      return Completion::ret(Value::undefined());
    Completion C = evalExpr(R->value(), Env, F);
    JSAI_PROPAGATE(C);
    return Completion::ret(C.V);
  }
  case NodeKind::Break:
    return Completion::brk();
  case NodeKind::Continue:
    return Completion::cont();
  case NodeKind::Throw: {
    Completion C = evalExpr(cast<ThrowStmt>(S)->value(), Env, F);
    JSAI_PROPAGATE(C);
    return Completion::toss(C.V);
  }
  case NodeKind::Try: {
    auto *T = cast<TryStmt>(S);
    Completion C = execBlockBody(T->body()->body(), Env, F);
    if (C.isThrow() && T->handler()) {
      if (T->catchParam())
        assignVariable(T->catchParam()->name(), C.V, Env);
      C = execBlockBody(T->handler()->body(), Env, F);
    }
    if (T->finalizer()) {
      Completion FinC = execBlockBody(T->finalizer()->body(), Env, F);
      if (FinC.isAbrupt())
        return FinC; // Finalizer's abrupt completion wins.
    }
    return C;
  }
  case NodeKind::Switch: {
    auto *W = cast<SwitchStmt>(S);
    Completion Disc = evalExpr(W->discriminant(), Env, F);
    JSAI_PROPAGATE(Disc);
    const auto &Cases = W->cases();
    size_t Start = Cases.size();
    size_t DefaultIdx = Cases.size();
    for (size_t I = 0; I != Cases.size(); ++I) {
      if (!Cases[I].Test) {
        DefaultIdx = I;
        continue;
      }
      Completion TestC = evalExpr(Cases[I].Test, Env, F);
      JSAI_PROPAGATE(TestC);
      if (Value::strictEquals(Disc.V, TestC.V)) {
        Start = I;
        break;
      }
    }
    if (Start == Cases.size())
      Start = DefaultIdx;
    for (size_t I = Start; I < Cases.size(); ++I) {
      for (Stmt *Child : Cases[I].Body) {
        Completion C = execStmt(Child, Env, F);
        if (C.Kind == CompletionKind::Break)
          return Completion::normal();
        JSAI_PROPAGATE(C);
      }
    }
    return Completion::normal();
  }
  case NodeKind::Empty:
    return Completion::normal();
  default:
    assert(false && "expression node in statement execution");
    return Completion::normal();
  }
}
