//===- Observer.h - Interpreter instrumentation hooks -----------*- C++ -*-===//
///
/// \file
/// Observation interface over interpreter execution. This is the C++
/// equivalent of the paper's Babel instrumentation + monkey-patching: the
/// approximate interpretation hint collector and the dynamic call-graph
/// recorder are both observers; the interpreter semantics stay in one place.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_INTERP_OBSERVER_H
#define JSAI_INTERP_OBSERVER_H

#include "ast/Ast.h"
#include "runtime/Value.h"
#include "support/SourceLoc.h"

#include <string>

namespace jsai {

class Object;

/// Callbacks fired during interpretation. Default implementations are no-ops
/// so observers override only what they need.
class InterpObserver {
public:
  virtual ~InterpObserver();

  /// A non-function object was allocated at \p L (invalid for eval code).
  virtual void onObjectCreated(Object *O) { (void)O; }

  /// A function value was created for \p Def.
  virtual void onFunctionCreated(Object *FnObj, FunctionDef *Def) {
    (void)FnObj;
    (void)Def;
  }

  /// A program-defined function is about to execute. \p CallSite is the
  /// location of the triggering call expression (or of the native call that
  /// invoked a callback; invalid for top-level module execution and for the
  /// worklist-driven forced executions).
  virtual void onCall(SourceLoc CallSite, FunctionDef *Callee) {
    (void)CallSite;
    (void)Callee;
  }

  /// A dynamic property read `E[E']` at \p ReadLoc of property \p PropName
  /// produced \p Result. The property name feeds the non-relational-hints
  /// ablation only; the paper's read hints use just (ReadLoc, Result).
  virtual void onDynamicRead(SourceLoc ReadLoc, const std::string &PropName,
                             const Value &Result) {
    (void)ReadLoc;
    (void)PropName;
    (void)Result;
  }

  /// A dynamic property write (or a standard-library equivalent such as
  /// Object.defineProperty / Object.assign) at \p OpLoc stored \p Val under
  /// \p PropName on \p Base. \p OpLoc is the write operation's location (for
  /// builtin-performed writes, the builtin call site); the paper's write
  /// hints ignore it, the non-relational ablation keys on it.
  virtual void onDynamicWrite(SourceLoc OpLoc, Object *Base,
                              const std::string &PropName, const Value &Val) {
    (void)OpLoc;
    (void)Base;
    (void)PropName;
    (void)Val;
  }

  /// A dynamic property read at \p ReadLoc whose *base* was the proxy `p*`
  /// but whose property name \p PropName was a known string — the data for
  /// the Section 6 "unknown function arguments" extension.
  virtual void onProxyBaseRead(SourceLoc ReadLoc, const std::string &PropName) {
    (void)ReadLoc;
    (void)PropName;
  }

  /// A module was required: \p CallSite is the require call location,
  /// \p ResolvedPath the loaded module. Used for dynamic module-load hints.
  virtual void onModuleRequired(SourceLoc CallSite,
                                const std::string &ResolvedPath) {
    (void)CallSite;
    (void)ResolvedPath;
  }

  /// eval was invoked with \p Code at \p CallSite (code-string hints,
  /// Section 6).
  virtual void onEvalCode(SourceLoc CallSite, const std::string &Code) {
    (void)CallSite;
    (void)Code;
  }
};

} // namespace jsai

#endif // JSAI_INTERP_OBSERVER_H
