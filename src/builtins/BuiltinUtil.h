//===- BuiltinUtil.h - Helpers for builtin installation ---------*- C++ -*-===//
///
/// \file
/// Internal helpers shared by the builtin installers. Not part of the
/// public API.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_BUILTINS_BUILTINUTIL_H
#define JSAI_BUILTINS_BUILTINUTIL_H

#include "interp/Interpreter.h"

namespace jsai {

/// Defines a native method \p Name on \p Target.
inline Object *defineMethod(Interpreter &I, Object *Target, const char *Name,
                            NativeFn Fn) {
  Object *F = I.heap().newNative(Name, std::move(Fn));
  F->setProto(I.protos().FunctionP);
  Target->setOwn(I.intern(Name), Value::object(F));
  return F;
}

/// Defines a native function \p Name in the global environment.
inline Object *defineGlobalFn(Interpreter &I, const char *Name, NativeFn Fn) {
  Object *F = I.heap().newNative(Name, std::move(Fn));
  F->setProto(I.protos().FunctionP);
  I.globalEnv()->define(I.intern(Name), Value::object(F));
  return F;
}

/// \returns argument \p Idx or undefined.
inline Value argAt(const std::vector<Value> &Args, size_t Idx) {
  return Idx < Args.size() ? Args[Idx] : Value::undefined();
}

/// Invokes every callable argument with proxy arguments and returns p* —
/// the paper's mock for side-effectful standard-library functions during
/// approximate interpretation.
Completion mockSideEffectful(Interpreter &I, std::vector<Value> &Args,
                             size_t NumCallbackArgs = 2);

} // namespace jsai

#endif // JSAI_BUILTINS_BUILTINUTIL_H
