//===- StringBuiltins.cpp - String constructor and prototype ----------------===//

#include "builtins/Builtins.h"
#include "builtins/BuiltinUtil.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace jsai;

/// ThisV as a string (method receivers are primitives here).
static std::string thisString(Interpreter &I, const Value &ThisV) {
  return I.toStringValue(ThisV);
}

void jsai::installStringBuiltins(Interpreter &I) {
  Object *Ctor = defineGlobalFn(
      I, "String",
      [](Interpreter &I, const Value &,
         std::vector<Value> &Args) -> Completion {
        if (Args.empty())
          return Value::str("");
        if (I.isProxyValue(Args[0]))
          return I.proxyValue();
        return Value::str(I.toStringValue(Args[0]));
      });
  Ctor->setOwn(I.context().SymPrototype, Value::object(I.protos().StringP));
  defineMethod(I, Ctor, "fromCharCode",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string Out;
                 for (const Value &A : Args)
                   Out.push_back(char(int(I.toNumberValue(A)) & 0xff));
                 return Value::str(std::move(Out));
               });

  Object *Proto = I.protos().StringP;

  defineMethod(I, Proto, "charAt",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 double Idx = I.toNumberValue(argAt(Args, 0));
                 if (Idx < 0 || Idx >= double(S.size()) || std::isnan(Idx))
                   return Value::str("");
                 return Value::str(std::string(1, S[size_t(Idx)]));
               });
  defineMethod(I, Proto, "charCodeAt",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 double Idx = I.toNumberValue(argAt(Args, 0));
                 if (std::isnan(Idx))
                   Idx = 0;
                 if (Idx < 0 || Idx >= double(S.size()))
                   return Value::number(std::nan(""));
                 return Value::number(
                     double(static_cast<unsigned char>(S[size_t(Idx)])));
               });
  defineMethod(I, Proto, "indexOf",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 std::string Needle = I.toStringValue(argAt(Args, 0));
                 size_t Pos = S.find(Needle);
                 return Value::number(
                     Pos == std::string::npos ? -1 : double(Pos));
               });
  defineMethod(I, Proto, "lastIndexOf",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 std::string Needle = I.toStringValue(argAt(Args, 0));
                 size_t Pos = S.rfind(Needle);
                 return Value::number(
                     Pos == std::string::npos ? -1 : double(Pos));
               });
  defineMethod(I, Proto, "includes",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 return Value::boolean(
                     S.find(I.toStringValue(argAt(Args, 0))) !=
                     std::string::npos);
               });
  defineMethod(I, Proto, "startsWith",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 std::string Prefix = I.toStringValue(argAt(Args, 0));
                 return Value::boolean(S.rfind(Prefix, 0) == 0);
               });
  defineMethod(I, Proto, "endsWith",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 std::string Suffix = I.toStringValue(argAt(Args, 0));
                 if (Suffix.size() > S.size())
                   return Value::boolean(false);
                 return Value::boolean(
                     S.compare(S.size() - Suffix.size(), Suffix.size(),
                               Suffix) == 0);
               });
  defineMethod(
      I, Proto, "slice",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        std::string S = thisString(I, ThisV);
        double Len = double(S.size());
        double Start = Args.empty() ? 0 : I.toNumberValue(Args[0]);
        double End = Args.size() < 2 || Args[1].isUndefined()
                         ? Len
                         : I.toNumberValue(Args[1]);
        if (Start < 0)
          Start = std::max(0.0, Len + Start);
        if (End < 0)
          End = std::max(0.0, Len + End);
        Start = std::min(Start, Len);
        End = std::min(End, Len);
        if (End <= Start)
          return Value::str("");
        return Value::str(S.substr(size_t(Start), size_t(End - Start)));
      });
  defineMethod(
      I, Proto, "substring",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        std::string S = thisString(I, ThisV);
        double Len = double(S.size());
        double Start = Args.empty() ? 0 : I.toNumberValue(Args[0]);
        double End = Args.size() < 2 || Args[1].isUndefined()
                         ? Len
                         : I.toNumberValue(Args[1]);
        Start = std::clamp(std::isnan(Start) ? 0 : Start, 0.0, Len);
        End = std::clamp(std::isnan(End) ? 0 : End, 0.0, Len);
        if (Start > End)
          std::swap(Start, End);
        return Value::str(S.substr(size_t(Start), size_t(End - Start)));
      });
  defineMethod(I, Proto, "substr",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 double Len = double(S.size());
                 double Start = Args.empty() ? 0 : I.toNumberValue(Args[0]);
                 if (Start < 0)
                   Start = std::max(0.0, Len + Start);
                 double Count = Args.size() < 2 ? Len - Start
                                                : I.toNumberValue(Args[1]);
                 Start = std::min(Start, Len);
                 Count = std::clamp(Count, 0.0, Len - Start);
                 return Value::str(S.substr(size_t(Start), size_t(Count)));
               });
  defineMethod(I, Proto, "toUpperCase",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 std::string S = thisString(I, ThisV);
                 for (char &C : S)
                   C = char(std::toupper(static_cast<unsigned char>(C)));
                 return Value::str(std::move(S));
               });
  defineMethod(I, Proto, "toLowerCase",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 std::string S = thisString(I, ThisV);
                 for (char &C : S)
                   C = char(std::tolower(static_cast<unsigned char>(C)));
                 return Value::str(std::move(S));
               });
  defineMethod(I, Proto, "trim",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 std::string S = thisString(I, ThisV);
                 size_t B = S.find_first_not_of(" \t\r\n");
                 if (B == std::string::npos)
                   return Value::str("");
                 size_t E = S.find_last_not_of(" \t\r\n");
                 return Value::str(S.substr(B, E - B + 1));
               });
  defineMethod(
      I, Proto, "split",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        std::string S = thisString(I, ThisV);
        std::vector<Value> Out;
        if (Args.empty() || Args[0].isUndefined()) {
          Out.push_back(Value::str(S));
        } else {
          std::string Sep = I.toStringValue(Args[0]);
          if (Sep.empty()) {
            for (char C : S)
              Out.push_back(Value::str(std::string(1, C)));
          } else {
            size_t Pos = 0;
            while (true) {
              size_t Next = S.find(Sep, Pos);
              if (Next == std::string::npos) {
                Out.push_back(Value::str(S.substr(Pos)));
                break;
              }
              Out.push_back(Value::str(S.substr(Pos, Next - Pos)));
              Pos = Next + Sep.size();
            }
          }
        }
        Object *A = I.heap().newArray(I.currentCallSite(), std::move(Out));
        A->setProto(I.protos().ArrayP);
        if (I.observer())
          I.observer()->onObjectCreated(A);
        return Value::object(A);
      });
  defineMethod(
      I, Proto, "replace",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        // String patterns only (MiniJS has no regular expressions).
        std::string S = thisString(I, ThisV);
        std::string Needle = I.toStringValue(argAt(Args, 0));
        Value Repl = argAt(Args, 1);
        size_t Pos = Needle.empty() ? std::string::npos : S.find(Needle);
        if (Pos == std::string::npos)
          return Value::str(std::move(S));
        std::string With;
        if (Repl.isObject() && Repl.asObject()->isCallable()) {
          Completion C = I.callValue(Repl, Value::undefined(),
                                     {Value::str(Needle),
                                      Value::number(double(Pos)),
                                      Value::str(S)},
                                     I.currentCallSite());
          JSAI_PROPAGATE(C);
          With = I.toStringValue(C.V);
        } else {
          With = I.toStringValue(Repl);
        }
        return Value::str(S.substr(0, Pos) + With +
                          S.substr(Pos + Needle.size()));
      });
  defineMethod(I, Proto, "concat",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 for (const Value &A : Args)
                   S += I.toStringValue(A);
                 return Value::str(std::move(S));
               });
  defineMethod(I, Proto, "repeat",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = thisString(I, ThisV);
                 double N = I.toNumberValue(argAt(Args, 0));
                 if (N < 0 || std::isnan(N) || N > 10000)
                   return I.throwError("RangeError",
                                       "invalid string repeat count");
                 std::string Out;
                 for (int K = 0; K < int(N); ++K)
                   Out += S;
                 return Value::str(std::move(Out));
               });
  defineMethod(I, Proto, "toString",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 return Value::str(thisString(I, ThisV));
               });

  // Number constructor and prototype basics live here too (small enough).
  Object *NumCtor = defineGlobalFn(
      I, "Number",
      [](Interpreter &I, const Value &,
         std::vector<Value> &Args) -> Completion {
        if (Args.empty())
          return Value::number(0);
        if (I.isProxyValue(Args[0]))
          return I.proxyValue();
        return Value::number(I.toNumberValue(Args[0]));
      });
  NumCtor->setOwn(I.context().SymPrototype,
                  Value::object(I.protos().NumberP));
  defineMethod(I, NumCtor, "isInteger",
               [](Interpreter &, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (!Arg.isNumber())
                   return Value::boolean(false);
                 double D = Arg.asNumber();
                 return Value::boolean(std::isfinite(D) && D == std::floor(D));
               });
  defineMethod(I, I.protos().NumberP, "toString",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 return Value::str(I.toStringValue(ThisV));
               });
  defineMethod(I, I.protos().NumberP, "toFixed",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 double D = I.toNumberValue(ThisV);
                 int Digits = int(I.toNumberValue(argAt(Args, 0)));
                 if (Digits < 0 || Digits > 20)
                   Digits = 0;
                 char Buf[64];
                 std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, D);
                 return Value::str(Buf);
               });

  Object *BoolCtor = defineGlobalFn(
      I, "Boolean",
      [](Interpreter &, const Value &,
         std::vector<Value> &Args) -> Completion {
        return Value::boolean(argAt(Args, 0).toBoolean());
      });
  BoolCtor->setOwn(I.context().SymPrototype,
                   Value::object(I.protos().BooleanP));
}
