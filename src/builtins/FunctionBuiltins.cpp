//===- FunctionBuiltins.cpp - Function.prototype and Function ctor ----------===//

#include "ast/ScopeResolver.h"
#include "builtins/Builtins.h"
#include "builtins/BuiltinUtil.h"
#include "parser/Parser.h"

using namespace jsai;

/// Spreads an array-like argument into a flat argument vector.
static std::vector<Value> spreadArgs(const Value &ArgsV) {
  std::vector<Value> Out;
  if (!ArgsV.isObject())
    return Out;
  Object *O = ArgsV.asObject();
  if (O->objectClass() == ObjectClass::Array ||
      O->objectClass() == ObjectClass::Arguments)
    Out = O->elements();
  return Out;
}

void jsai::installFunctionBuiltins(Interpreter &I) {
  Object *Proto = I.protos().FunctionP;

  defineMethod(I, Proto, "apply",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 Value ArgsV = argAt(Args, 1);
                 std::vector<Value> CallArgs;
                 if (I.isProxyValue(ArgsV)) {
                   // f.apply(x, p*): parameters become p* (Section 3's
                   // forced-execution convention).
                   if (ThisV.isObject() && ThisV.asObject()->functionDef())
                     CallArgs.assign(
                         ThisV.asObject()->functionDef()->params().size(),
                         I.proxyValue());
                 } else {
                   CallArgs = spreadArgs(ArgsV);
                 }
                 return I.callValue(ThisV, argAt(Args, 0),
                                    std::move(CallArgs), I.currentCallSite());
               });
  defineMethod(I, Proto, "call",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 std::vector<Value> CallArgs(
                     Args.begin() + std::min<size_t>(1, Args.size()),
                     Args.end());
                 return I.callValue(ThisV, argAt(Args, 0),
                                    std::move(CallArgs), I.currentCallSite());
               });
  defineMethod(I, Proto, "bind",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 if (!ThisV.isObject() || !ThisV.asObject()->isCallable())
                   return I.isProxyValue(ThisV)
                              ? Completion(I.proxyValue())
                              : I.throwError("TypeError",
                                             "bind target is not a function");
                 Object *Bound = I.heap().newObject(ObjectClass::Function,
                                                    SourceLoc::invalid());
                 Bound->setProto(I.protos().FunctionP);
                 std::vector<Value> Prefix(
                     Args.begin() + std::min<size_t>(1, Args.size()),
                     Args.end());
                 Bound->setBound(ThisV.asObject(), argAt(Args, 0),
                                 std::move(Prefix));
                 // Mark as callable even without a Def or native body.
                 Bound->setNative("bound", nullptr);
                 return Value::object(Bound);
               });
  defineMethod(I, Proto, "toString",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 return Value::str(I.toStringValue(ThisV));
               });

  // The Function constructor: dynamically generated code, like eval.
  Object *Ctor = defineGlobalFn(
      I, "Function",
      [](Interpreter &I, const Value &,
         std::vector<Value> &Args) -> Completion {
        std::string Params;
        std::string Body;
        for (size_t Idx = 0; Idx != Args.size(); ++Idx) {
          if (I.isProxyValue(Args[Idx]))
            return I.proxyValue();
          std::string Text = I.toStringValue(Args[Idx]);
          if (Idx + 1 == Args.size()) {
            Body = Text;
          } else {
            if (!Params.empty())
              Params += ", ";
            Params += Text;
          }
        }
        std::string Source =
            "var __fn = function(" + Params + ") {" + Body + "};";
        if (I.observer())
          I.observer()->onEvalCode(I.currentCallSite(), Source);
        Parser P(I.context(), I.loader().diagnostics());
        FunctionDef *F =
            P.parseEval(Source, nullptr, I.currentCallSite());
        if (!F)
          return I.throwError("SyntaxError",
                              "invalid code passed to Function");
        ScopeResolver(I.context()).resolveFunction(F);
        Environment *Env = I.heap().newEnvironment(I.globalEnv());
        Completion C = I.runEvalBody(F, Env);
        JSAI_PROPAGATE(C);
        Value *Fn = Env->lookup(I.intern("__fn"));
        return Fn ? *Fn : Value::undefined();
      });
  Ctor->setOwn(I.context().SymPrototype, Value::object(Proto));
}
