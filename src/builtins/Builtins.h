//===- Builtins.h - Standard library installation ---------------*- C++ -*-===//
///
/// \file
/// Installation of the MiniJS standard library model: the ECMAScript core
/// (Object, Array, String, Function, Math, JSON, console, Error, eval) and
/// Node.js-style builtin modules (http, fs, net, path, util). Everything is
/// an in-memory fake — there is never real I/O — which doubles as the
/// paper's sandboxing requirement for approximate interpretation.
///
//===----------------------------------------------------------------------===//

#ifndef JSAI_BUILTINS_BUILTINS_H
#define JSAI_BUILTINS_BUILTINS_H

namespace jsai {

class Interpreter;

/// Installs the complete standard-library model into \p I's global
/// environment. Called once by the Interpreter constructor.
void installBuiltins(Interpreter &I);

/// Sub-installers (one per translation unit; called by installBuiltins).
void installObjectBuiltins(Interpreter &I);
void installArrayBuiltins(Interpreter &I);
void installStringBuiltins(Interpreter &I);
void installFunctionBuiltins(Interpreter &I);
void installNodeBuiltins(Interpreter &I);

} // namespace jsai

#endif // JSAI_BUILTINS_BUILTINS_H
