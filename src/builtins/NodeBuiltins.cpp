//===- NodeBuiltins.cpp - Node.js builtin-module models ---------------------===//
//
// In-memory fakes for the Node standard library. Nothing ever touches the
// host system, which doubles as the paper's sandboxing requirement: during
// approximate interpretation, side-effectful functions (fs, net, http, ...)
// behave as mocks that invoke any function arguments and return p*.
//
//===----------------------------------------------------------------------===//

#include "builtins/Builtins.h"
#include "builtins/BuiltinUtil.h"

using namespace jsai;

static Object *newPlain(Interpreter &I) {
  Object *O = I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  O->setProto(I.protos().ObjectP);
  return O;
}

//===----------------------------------------------------------------------===//
// events — a native EventEmitter fallback (benchmark projects usually ship a
// MiniJS "events" package, which takes precedence in require resolution).
//===----------------------------------------------------------------------===//

static Value makeEventsModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  // EventEmitter constructor: handlers live in this._events.
  Object *Ctor = I.heap().newNative(
      "EventEmitter",
      [](Interpreter &I, const Value &ThisV,
         std::vector<Value> &) -> Completion {
        if (ThisV.isObject() && !ThisV.asObject()->isProxy())
          ThisV.asObject()->setOwn(I.intern("_events"), I.makeArray({}));
        return Value::undefined();
      });
  Ctor->setProto(I.protos().FunctionP);
  Object *Proto = newPlain(I);
  Ctor->setOwn(I.context().SymPrototype, Value::object(Proto));
  Proto->setOwn(I.context().SymConstructor, Value::object(Ctor));

  defineMethod(I, Proto, "on",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 if (!ThisV.isObject() || ThisV.asObject()->isProxy())
                   return ThisV;
                 Object *Self = ThisV.asObject();
                 Symbol Key = I.intern(
                     "__on_" + I.toStringValue(argAt(Args, 0)));
                 // One handler list per event name.
                 auto Existing = Self->getOwn(Key);
                 Value List = Existing ? *Existing : I.makeArray({});
                 if (List.isObject() &&
                     List.asObject()->objectClass() == ObjectClass::Array)
                   List.asObject()->elements().push_back(argAt(Args, 1));
                 Self->setOwn(Key, List);
                 return ThisV;
               });
  defineMethod(I, Proto, "once",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 // Same registration semantics as `on` for analysis purposes.
                 Completion On = I.getProperty(ThisV, "on", SourceLoc::invalid());
                 JSAI_PROPAGATE(On);
                 return I.callValue(On.V, ThisV, Args, I.currentCallSite());
               });
  defineMethod(
      I, Proto, "emit",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        if (!ThisV.isObject() || ThisV.asObject()->isProxy())
          return Value::boolean(false);
        Object *Self = ThisV.asObject();
        Symbol Key = I.intern("__on_" + I.toStringValue(argAt(Args, 0)));
        auto List = Self->getOwn(Key);
        if (!List || !List->isObject())
          return Value::boolean(false);
        std::vector<Value> HandlerArgs(
            Args.begin() + std::min<size_t>(1, Args.size()), Args.end());
        for (const Value &H : List->asObject()->elements()) {
          Completion C =
              I.callValue(H, ThisV, HandlerArgs, I.currentCallSite());
          JSAI_PROPAGATE(C);
        }
        return Value::boolean(true);
      });
  defineMethod(I, Proto, "removeListener",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion { return ThisV; });

  Exports->setOwn(I.intern("EventEmitter"), Value::object(Ctor));
  // `require('events')` historically returns the constructor itself too.
  Ctor->setOwn(I.intern("EventEmitter"), Value::object(Ctor));
  return Value::object(Exports);
}

//===----------------------------------------------------------------------===//
// http / net / fs — side-effectful modules, mocked per Section 3.
//===----------------------------------------------------------------------===//

static Value makeFakeServer(Interpreter &I) {
  Object *Server = newPlain(I);
  defineMethod(I, Server, "listen",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 // Never binds a port; invokes the ready callback.
                 for (const Value &A : Args)
                   if (A.isObject() && A.asObject()->isCallable()) {
                     Completion C = I.callValue(A, ThisV, {},
                                                I.currentCallSite());
                     JSAI_PROPAGATE(C);
                   }
                 return ThisV;
               });
  defineMethod(I, Server, "close",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 for (const Value &A : Args)
                   if (A.isObject() && A.asObject()->isCallable()) {
                     Completion C = I.callValue(A, ThisV, {},
                                                I.currentCallSite());
                     JSAI_PROPAGATE(C);
                   }
                 return ThisV;
               });
  defineMethod(I, Server, "on",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion { return ThisV; });
  defineMethod(I, Server, "address",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &) -> Completion {
                 Object *Addr = I.heap().newObject(ObjectClass::Plain,
                                                   SourceLoc::invalid());
                 Addr->setProto(I.protos().ObjectP);
                 Addr->setOwn(I.intern("port"), Value::number(8080));
                 return Value::object(Addr);
               });
  return Value::object(Server);
}

static Value makeHttpModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  defineMethod(
      I, Exports, "createServer",
      [](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        if (I.options().ApproxMode)
          return mockSideEffectful(I, Args);
        Value Server = makeFakeServer(I);
        // Remember the request handler so tests can drive it via
        // server.__handler.
        if (!Args.empty())
          Server.asObject()->setOwn(I.intern("__handler"), Args[0]);
        return Server;
      });
  auto RequestFn = [](Interpreter &I, const Value &,
                      std::vector<Value> &Args) -> Completion {
    if (I.options().ApproxMode)
      return mockSideEffectful(I, Args);
    // Invoke the response callback with a fake response object.
    Object *Res = newPlain(I);
    Res->setOwn(I.intern("statusCode"), Value::number(200));
    defineMethod(I, Res, "on",
                 [](Interpreter &, const Value &ThisV,
                    std::vector<Value> &) -> Completion { return ThisV; });
    for (const Value &A : Args)
      if (A.isObject() && A.asObject()->isCallable()) {
        Completion C = I.callValue(A, Value::undefined(),
                                   {Value::object(Res)}, I.currentCallSite());
        JSAI_PROPAGATE(C);
      }
    return makeFakeServer(I);
  };
  defineMethod(I, Exports, "get", RequestFn);
  defineMethod(I, Exports, "request", RequestFn);
  return Value::object(Exports);
}

static Value makeNetModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  defineMethod(I, Exports, "createServer",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (I.options().ApproxMode)
                   return mockSideEffectful(I, Args);
                 return makeFakeServer(I);
               });
  defineMethod(I, Exports, "connect",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (I.options().ApproxMode)
                   return mockSideEffectful(I, Args);
                 Object *Socket = newPlain(I);
                 defineMethod(I, Socket, "on",
                              [](Interpreter &, const Value &ThisV,
                                 std::vector<Value> &) -> Completion {
                                return ThisV;
                              });
                 defineMethod(I, Socket, "write",
                              [](Interpreter &, const Value &,
                                 std::vector<Value> &) -> Completion {
                                return Value::boolean(true);
                              });
                 defineMethod(I, Socket, "end",
                              [](Interpreter &, const Value &,
                                 std::vector<Value> &) -> Completion {
                                return Value::undefined();
                              });
                 for (const Value &A : Args)
                   if (A.isObject() && A.asObject()->isCallable()) {
                     Completion C = I.callValue(A, Value::object(Socket), {},
                                                I.currentCallSite());
                     JSAI_PROPAGATE(C);
                   }
                 return Value::object(Socket);
               });
  return Value::object(Exports);
}

static Value makeFsModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  defineMethod(
      I, Exports, "readFile",
      [](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        if (I.options().ApproxMode)
          return mockSideEffectful(I, Args);
        for (const Value &A : Args)
          if (A.isObject() && A.asObject()->isCallable())
            return I.callValue(A, Value::undefined(),
                               {Value::null(), Value::str("<fake contents>")},
                               I.currentCallSite());
        return Value::undefined();
      });
  defineMethod(I, Exports, "readFileSync",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (I.options().ApproxMode)
                   return mockSideEffectful(I, Args);
                 return Value::str("<fake contents>");
               });
  defineMethod(
      I, Exports, "writeFile",
      [](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        if (I.options().ApproxMode)
          return mockSideEffectful(I, Args);
        for (const Value &A : Args)
          if (A.isObject() && A.asObject()->isCallable())
            return I.callValue(A, Value::undefined(), {Value::null()},
                               I.currentCallSite());
        return Value::undefined();
      });
  defineMethod(I, Exports, "writeFileSync",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (I.options().ApproxMode)
                   return mockSideEffectful(I, Args);
                 return Value::undefined();
               });
  defineMethod(I, Exports, "existsSync",
               [](Interpreter &, const Value &,
                  std::vector<Value> &) -> Completion {
                 return Value::boolean(false);
               });
  defineMethod(
      I, Exports, "readdir",
      [](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        if (I.options().ApproxMode)
          return mockSideEffectful(I, Args);
        for (const Value &A : Args)
          if (A.isObject() && A.asObject()->isCallable())
            return I.callValue(A, Value::undefined(),
                               {Value::null(), I.makeArray({})},
                               I.currentCallSite());
        return Value::undefined();
      });
  defineMethod(I, Exports, "readdirSync",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &) -> Completion {
                 return I.makeArray({});
               });
  return Value::object(Exports);
}

//===----------------------------------------------------------------------===//
// path / util — pure helpers, identical in both modes.
//===----------------------------------------------------------------------===//

static Value makePathModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  defineMethod(I, Exports, "join",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string Out;
                 for (const Value &A : Args) {
                   if (I.isProxyValue(A))
                     return I.proxyValue();
                   std::string Part = I.toStringValue(A);
                   if (Part.empty())
                     continue;
                   if (!Out.empty() && Out.back() != '/')
                     Out += '/';
                   Out += Part;
                 }
                 return Value::str(FileSystem::normalizePath(Out));
               });
  defineMethod(I, Exports, "resolve",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string Out;
                 for (const Value &A : Args) {
                   if (I.isProxyValue(A))
                     return I.proxyValue();
                   std::string Part = I.toStringValue(A);
                   if (!Out.empty() && Out.back() != '/')
                     Out += '/';
                   Out += Part;
                 }
                 return Value::str("/" + FileSystem::normalizePath(Out));
               });
  defineMethod(I, Exports, "basename",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = I.toStringValue(argAt(Args, 0));
                 size_t Slash = S.rfind('/');
                 return Value::str(
                     Slash == std::string::npos ? S : S.substr(Slash + 1));
               });
  defineMethod(I, Exports, "dirname",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = I.toStringValue(argAt(Args, 0));
                 size_t Slash = S.rfind('/');
                 return Value::str(
                     Slash == std::string::npos ? "." : S.substr(0, Slash));
               });
  defineMethod(I, Exports, "extname",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string S = I.toStringValue(argAt(Args, 0));
                 size_t Dot = S.rfind('.');
                 size_t Slash = S.rfind('/');
                 if (Dot == std::string::npos ||
                     (Slash != std::string::npos && Dot < Slash))
                   return Value::str("");
                 return Value::str(S.substr(Dot));
               });
  Exports->setOwn(I.intern("sep"), Value::str("/"));
  return Value::object(Exports);
}

static Value makeUtilModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  defineMethod(
      I, Exports, "inherits",
      [](Interpreter &I, const Value &, std::vector<Value> &Args)
          -> Completion {
        Value Ctor = argAt(Args, 0);
        Value Super = argAt(Args, 1);
        if (!Ctor.isObject() || !Super.isObject() ||
            Ctor.asObject()->isProxy() || Super.asObject()->isProxy())
          return Value::undefined();
        auto CtorProto = Ctor.asObject()->getOwn(I.context().SymPrototype);
        auto SuperProto = Super.asObject()->getOwn(I.context().SymPrototype);
        if (CtorProto && CtorProto->isObject() && SuperProto &&
            SuperProto->isObject())
          CtorProto->asObject()->setProto(SuperProto->asObject());
        Ctor.asObject()->setOwn(I.intern("super_"), Super);
        return Value::undefined();
      });
  defineMethod(I, Exports, "format",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string Out;
                 for (size_t Idx = 0; Idx != Args.size(); ++Idx) {
                   if (Idx)
                     Out += ' ';
                   Out += I.toStringValue(Args[Idx]);
                 }
                 return Value::str(std::move(Out));
               });
  defineMethod(I, Exports, "isArray",
               [](Interpreter &, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 return Value::boolean(
                     Arg.isObject() &&
                     Arg.asObject()->objectClass() == ObjectClass::Array);
               });
  return Value::object(Exports);
}

//===----------------------------------------------------------------------===//
// child_process — the canonical "exec" family (always mocked).
//===----------------------------------------------------------------------===//

static Value makeChildProcessModule(Interpreter &I) {
  Object *Exports = newPlain(I);
  auto ExecFn = [](Interpreter &I, const Value &,
                   std::vector<Value> &Args) -> Completion {
    // Never executes anything; invokes callbacks with fake output.
    if (I.options().ApproxMode)
      return mockSideEffectful(I, Args);
    for (const Value &A : Args)
      if (A.isObject() && A.asObject()->isCallable())
        return I.callValue(A, Value::undefined(),
                           {Value::null(), Value::str(""), Value::str("")},
                           I.currentCallSite());
    return Value::undefined();
  };
  defineMethod(I, Exports, "exec", ExecFn);
  defineMethod(I, Exports, "execSync",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (I.options().ApproxMode)
                   return mockSideEffectful(I, Args);
                 return Value::str("");
               });
  defineMethod(I, Exports, "spawn", ExecFn);
  return Value::object(Exports);
}

void jsai::installNodeBuiltins(Interpreter &I) {
  I.registerBuiltinModule("events", makeEventsModule(I));
  I.registerBuiltinModule("http", makeHttpModule(I));
  I.registerBuiltinModule("net", makeNetModule(I));
  I.registerBuiltinModule("fs", makeFsModule(I));
  I.registerBuiltinModule("path", makePathModule(I));
  I.registerBuiltinModule("util", makeUtilModule(I));
  I.registerBuiltinModule("child_process", makeChildProcessModule(I));
}
