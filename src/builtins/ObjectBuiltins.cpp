//===- ObjectBuiltins.cpp - Object constructor and statics ------------------===//
//
// Object.create is modeled as object construction and Object.defineProperty /
// Object.defineProperties / Object.assign as dynamic property writes, exactly
// as Section 3 of the paper prescribes for native ECMAScript functions.
//
//===----------------------------------------------------------------------===//

#include "builtins/Builtins.h"
#include "builtins/BuiltinUtil.h"
#include "support/JsNumber.h"

using namespace jsai;

/// Own enumerable keys of \p O as string values (array indices first for
/// arrays, matching engine order).
static std::vector<Value> ownKeyStrings(Interpreter &I, Object *O,
                                        bool IncludeLength) {
  std::vector<Value> Keys;
  if (O->objectClass() == ObjectClass::Array ||
      O->objectClass() == ObjectClass::Arguments) {
    for (size_t Idx = 0; Idx != O->elements().size(); ++Idx)
      Keys.push_back(Value::str(jsNumberToString(double(Idx))));
    if (IncludeLength)
      Keys.push_back(Value::str("length"));
  }
  for (Symbol Key : O->ownKeys())
    Keys.push_back(Value::str(I.strings().str(Key)));
  return Keys;
}

/// Performs one descriptor-based property definition; fires the dynamic
/// write observation for the stored value (or, for accessor descriptors,
/// the getter function — the dataflow that matters for call graphs).
static void definePropertyFromDescriptor(Interpreter &I, Object *Target,
                                         Symbol Name, const Value &Desc) {
  if (!Desc.isObject() || Desc.asObject()->isProxy())
    return;
  Object *D = Desc.asObject();
  auto AsFn = [](std::optional<Value> V) -> Object * {
    return V && V->isObject() && V->asObject()->isCallable() ? V->asObject()
                                                             : nullptr;
  };
  const auto &WK = I.context().WK;
  Object *Getter = AsFn(D->getOwn(WK.Get));
  Object *Setter = AsFn(D->getOwn(WK.Set));
  if (Getter || Setter) {
    if (I.observer() && Getter)
      I.observer()->onDynamicWrite(I.currentCallSite(), Target,
                                   I.strings().str(Name),
                                   Value::object(Getter));
    Target->setAccessor(Name, Getter, Setter);
    return;
  }
  std::optional<Value> V = D->getOwn(WK.Value);
  if (!V)
    return;
  I.dynamicWriteByBuiltin(Target, Name, *V);
}

void jsai::installObjectBuiltins(Interpreter &I) {
  // The Object constructor.
  Object *Ctor = defineGlobalFn(
      I, "Object",
      [](Interpreter &I, const Value &,
         std::vector<Value> &Args) -> Completion {
        Value Arg = argAt(Args, 0);
        if (Arg.isObject())
          return Arg;
        Object *O = I.heap().newObject(ObjectClass::Plain,
                                       I.currentCallSite());
        O->setProto(I.protos().ObjectP);
        if (I.observer())
          I.observer()->onObjectCreated(O);
        return Value::object(O);
      });
  Ctor->setOwn(I.context().SymPrototype, Value::object(I.protos().ObjectP));

  defineMethod(I, Ctor, "keys",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (!Arg.isObject() || Arg.asObject()->isProxy())
                   return I.makeArray({});
                 return I.makeArray(
                     ownKeyStrings(I, Arg.asObject(), /*IncludeLength=*/false));
               });
  defineMethod(I, Ctor, "getOwnPropertyNames",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (!Arg.isObject() || Arg.asObject()->isProxy())
                   return I.makeArray({});
                 return I.makeArray(
                     ownKeyStrings(I, Arg.asObject(), /*IncludeLength=*/true));
               });
  defineMethod(
      I, Ctor, "values",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Arg = argAt(Args, 0);
        if (!Arg.isObject() || Arg.asObject()->isProxy())
          return I.makeArray({});
        Object *O = Arg.asObject();
        std::vector<Value> Out;
        if (O->objectClass() == ObjectClass::Array)
          Out = O->elements();
        for (Symbol Key : O->ownKeys()) {
          Completion V = I.getProperty(Arg, Key, SourceLoc::invalid());
          JSAI_PROPAGATE(V);
          Out.push_back(V.V);
        }
        return I.makeArray(std::move(Out));
      });
  defineMethod(
      I, Ctor, "entries",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Arg = argAt(Args, 0);
        if (!Arg.isObject() || Arg.asObject()->isProxy())
          return I.makeArray({});
        Object *O = Arg.asObject();
        std::vector<Value> Out;
        for (Symbol Key : O->ownKeys()) {
          Completion V = I.getProperty(Arg, Key, SourceLoc::invalid());
          JSAI_PROPAGATE(V);
          Out.push_back(
              I.makeArray({Value::str(I.strings().str(Key)), V.V}));
        }
        return I.makeArray(std::move(Out));
      });
  defineMethod(
      I, Ctor, "getOwnPropertyDescriptor",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Arg = argAt(Args, 0);
        Value NameV = argAt(Args, 1);
        if (!Arg.isObject() || Arg.asObject()->isProxy() ||
            I.isProxyValue(NameV))
          return I.isProxyValue(Arg) ? Completion(I.proxyValue())
                                     : Completion(Value::undefined());
        Symbol Name = I.intern(I.toStringValue(NameV));
        const auto &WK = I.context().WK;
        Object *O = Arg.asObject();
        Object *Desc =
            I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
        Desc->setProto(I.protos().ObjectP);
        // Accessor properties surface as {get, set} descriptors, so the
        // merge-descriptors idiom copies accessors faithfully.
        const PropertySlot *Slot = O->getOwnSlot(Name);
        if (Slot && Slot->isAccessor()) {
          Desc->setOwn(WK.Get, Slot->Getter ? Value::object(Slot->Getter)
                                            : Value::undefined());
          Desc->setOwn(WK.Set, Slot->Setter ? Value::object(Slot->Setter)
                                            : Value::undefined());
          Desc->setOwn(WK.Enumerable, Value::boolean(true));
          Desc->setOwn(WK.Configurable, Value::boolean(true));
          return Value::object(Desc);
        }
        Completion PropC = I.getProperty(Arg, Name, SourceLoc::invalid());
        JSAI_PROPAGATE(PropC);
        bool IsIndex = O->objectClass() == ObjectClass::Array &&
                       !PropC.V.isUndefined();
        // Re-probe: the read above may have run a prototype getter that
        // mutated O (and invalidated Slot).
        if (!O->hasOwn(Name) && !IsIndex)
          return Value::undefined();
        Desc->setOwn(WK.Value, PropC.V);
        Desc->setOwn(WK.Writable, Value::boolean(true));
        Desc->setOwn(WK.Enumerable, Value::boolean(true));
        Desc->setOwn(WK.Configurable, Value::boolean(true));
        return Value::object(Desc);
      });
  defineMethod(
      I, Ctor, "defineProperty",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Target = argAt(Args, 0);
        Value NameV = argAt(Args, 1);
        if (!Target.isObject())
          return I.throwError("TypeError",
                              "Object.defineProperty called on non-object");
        if (Target.asObject()->isProxy() || I.isProxyValue(NameV))
          return Target;
        definePropertyFromDescriptor(I, Target.asObject(),
                                     I.intern(I.toStringValue(NameV)),
                                     argAt(Args, 2));
        return Target;
      });
  defineMethod(
      I, Ctor, "defineProperties",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Target = argAt(Args, 0);
        Value Props = argAt(Args, 1);
        if (!Target.isObject())
          return I.throwError("TypeError",
                              "Object.defineProperties called on non-object");
        if (Target.asObject()->isProxy() || !Props.isObject() ||
            Props.asObject()->isProxy())
          return Target;
        Object *P = Props.asObject();
        for (Symbol Key : P->ownKeys())
          if (auto D = P->getOwn(Key))
            definePropertyFromDescriptor(I, Target.asObject(), Key, *D);
        return Target;
      });
  defineMethod(
      I, Ctor, "assign",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        Value Target = argAt(Args, 0);
        if (!Target.isObject() || Target.asObject()->isProxy())
          return Target;
        Object *Dst = Target.asObject();
        for (size_t Idx = 1; Idx < Args.size(); ++Idx) {
          const Value &Src = Args[Idx];
          if (!Src.isObject() || Src.asObject()->isProxy())
            continue;
          Object *S = Src.asObject();
          if (S->objectClass() == ObjectClass::Array)
            for (size_t El = 0; El != S->elements().size(); ++El)
              I.dynamicWriteByBuiltin(Dst, jsNumberToString(double(El)),
                                      S->elements()[El]);
          for (Symbol Key : S->ownKeys()) {
            // Reads invoke getters, as Object.assign does in real JS.
            Completion V = I.getProperty(Src, Key, SourceLoc::invalid());
            JSAI_PROPAGATE(V);
            I.dynamicWriteByBuiltin(Dst, Key, V.V);
          }
        }
        return Target;
      });
  defineMethod(
      I, Ctor, "create",
      [](Interpreter &I, const Value &, std::vector<Value> &Args) -> Completion {
        // A form of object construction (Section 3): the allocation site is
        // the Object.create call site.
        Object *O =
            I.heap().newObject(ObjectClass::Plain, I.currentCallSite());
        Value ProtoV = argAt(Args, 0);
        O->setProto(ProtoV.isObject() && !ProtoV.asObject()->isProxy()
                        ? ProtoV.asObject()
                        : nullptr);
        if (I.observer())
          I.observer()->onObjectCreated(O);
        Value Props = argAt(Args, 1);
        if (Props.isObject() && !Props.asObject()->isProxy()) {
          Object *P = Props.asObject();
          for (Symbol Key : P->ownKeys())
            if (auto D = P->getOwn(Key))
              definePropertyFromDescriptor(I, O, Key, *D);
        }
        return Value::object(O);
      });
  defineMethod(I, Ctor, "getPrototypeOf",
               [](Interpreter &, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (!Arg.isObject() || Arg.asObject()->isProxy())
                   return Value::null();
                 Object *P = Arg.asObject()->proto();
                 return P ? Value::object(P) : Value::null();
               });
  defineMethod(I, Ctor, "setPrototypeOf",
               [](Interpreter &, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 Value ProtoV = argAt(Args, 1);
                 if (Arg.isObject() && !Arg.asObject()->isProxy())
                   Arg.asObject()->setProto(
                       ProtoV.isObject() && !ProtoV.asObject()->isProxy()
                           ? ProtoV.asObject()
                           : nullptr);
                 return Arg;
               });
  for (const char *Identity : {"freeze", "seal", "preventExtensions"})
    defineMethod(I, Ctor, Identity,
                 [](Interpreter &, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   return argAt(Args, 0);
                 });

  // Object.prototype methods.
  Object *Proto = I.protos().ObjectP;
  defineMethod(I, Proto, "hasOwnProperty",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 Value NameV = argAt(Args, 0);
                 if (!ThisV.isObject() || ThisV.asObject()->isProxy() ||
                     I.isProxyValue(NameV))
                   return Value::boolean(false);
                 std::string Name = I.toStringValue(NameV);
                 Object *O = ThisV.asObject();
                 if (O->objectClass() == ObjectClass::Array) {
                   size_t Idx = 0;
                   bool AllDigits = !Name.empty();
                   for (char C : Name)
                     AllDigits = AllDigits && C >= '0' && C <= '9';
                   if (AllDigits) {
                     Idx = size_t(jsStringToNumber(Name));
                     return Value::boolean(Idx < O->elements().size());
                   }
                 }
                 return Value::boolean(O->hasOwn(I.intern(Name)));
               });
  defineMethod(I, Proto, "toString",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 return Value::str(I.toStringValue(ThisV));
               });
  defineMethod(I, Proto, "valueOf",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion { return ThisV; });
  defineMethod(I, Proto, "isPrototypeOf",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (!ThisV.isObject() || !Arg.isObject())
                   return Value::boolean(false);
                 for (Object *O = Arg.asObject()->proto(); O; O = O->proto())
                   if (O == ThisV.asObject())
                     return Value::boolean(true);
                 return Value::boolean(false);
               });
}
