//===- Builtins.cpp - Core ECMAScript global installation ------------------===//

#include "builtins/Builtins.h"

#include "builtins/BuiltinUtil.h"
#include "support/JsNumber.h"

#include <cmath>

using namespace jsai;

Completion jsai::mockSideEffectful(Interpreter &I, std::vector<Value> &Args,
                                   size_t NumCallbackArgs) {
  for (const Value &A : Args) {
    if (!A.isObject() || !A.asObject()->isCallable())
      continue;
    std::vector<Value> CbArgs(NumCallbackArgs, I.proxyValue());
    Completion C = I.callValue(A, I.proxyValue(), std::move(CbArgs),
                               I.currentCallSite());
    JSAI_PROPAGATE(C);
  }
  return I.proxyValue();
}

//===----------------------------------------------------------------------===//
// console / Math / JSON / misc globals
//===----------------------------------------------------------------------===//

static void installConsole(Interpreter &I) {
  Object *Console =
      I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  Console->setProto(I.protos().ObjectP);
  auto LogFn = [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
    std::string Line;
    for (size_t Idx = 0; Idx != Args.size(); ++Idx) {
      if (Idx)
        Line += ' ';
      Line += I.toStringValue(Args[Idx]);
    }
    I.consoleOutput().push_back(std::move(Line));
    return Value::undefined();
  };
  for (const char *Name : {"log", "warn", "error", "info", "debug"})
    defineMethod(I, Console, Name, LogFn);
  I.globalEnv()->define(I.intern("console"), Value::object(Console));
}

static void installMath(Interpreter &I) {
  Object *Math = I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  Math->setProto(I.protos().ObjectP);
  Math->setOwn(I.intern("PI"), Value::number(3.141592653589793));
  Math->setOwn(I.intern("E"), Value::number(2.718281828459045));

  auto Unary = [](double (*Fn)(double)) {
    return [Fn](Interpreter &I, const Value &,
                std::vector<Value> &Args) -> Completion {
      return Value::number(Fn(I.toNumberValue(argAt(Args, 0))));
    };
  };
  defineMethod(I, Math, "floor", Unary([](double D) { return std::floor(D); }));
  defineMethod(I, Math, "ceil", Unary([](double D) { return std::ceil(D); }));
  defineMethod(I, Math, "round", Unary([](double D) { return std::floor(D + 0.5); }));
  defineMethod(I, Math, "abs", Unary([](double D) { return std::fabs(D); }));
  defineMethod(I, Math, "sqrt", Unary([](double D) { return std::sqrt(D); }));
  defineMethod(I, Math, "trunc", Unary([](double D) { return std::trunc(D); }));
  defineMethod(I, Math, "max",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 double Best = -HUGE_VAL;
                 for (const Value &A : Args)
                   Best = std::fmax(Best, I.toNumberValue(A));
                 return Value::number(Args.empty() ? -HUGE_VAL : Best);
               });
  defineMethod(I, Math, "min",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 double Best = HUGE_VAL;
                 for (const Value &A : Args)
                   Best = std::fmin(Best, I.toNumberValue(A));
                 return Value::number(Args.empty() ? HUGE_VAL : Best);
               });
  defineMethod(I, Math, "pow",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 return Value::number(std::pow(I.toNumberValue(argAt(Args, 0)),
                                               I.toNumberValue(argAt(Args, 1))));
               });
  defineMethod(I, Math, "random",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &) -> Completion {
                 // Deterministic stand-in (reproducible corpus runs).
                 return Value::number(I.nextRandom());
               });
  I.globalEnv()->define(I.intern("Math"), Value::object(Math));
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

static void jsonStringify(Interpreter &I, const Value &V, std::string &Out,
                          int Depth) {
  if (Depth > 16) {
    Out += "null";
    return;
  }
  switch (V.kind()) {
  case ValueKind::Undefined:
    Out += "null";
    return;
  case ValueKind::Null:
    Out += "null";
    return;
  case ValueKind::Boolean:
    Out += V.asBoolean() ? "true" : "false";
    return;
  case ValueKind::Number:
    Out += jsNumberToString(V.asNumber());
    return;
  case ValueKind::String: {
    Out += '"';
    for (char C : V.asString()) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        Out += C;
        break;
      }
    }
    Out += '"';
    return;
  }
  case ValueKind::Object: {
    Object *O = V.asObject();
    if (O->isProxy() || O->isCallable()) {
      Out += "null";
      return;
    }
    if (O->objectClass() == ObjectClass::Array) {
      Out += '[';
      for (size_t Idx = 0; Idx != O->elements().size(); ++Idx) {
        if (Idx)
          Out += ',';
        jsonStringify(I, O->elements()[Idx], Out, Depth + 1);
      }
      Out += ']';
      return;
    }
    Out += '{';
    bool First = true;
    for (Symbol Key : O->ownKeys()) {
      auto PV = O->getOwn(Key);
      if (!PV || (PV->isObject() && PV->asObject()->isCallable()) ||
          PV->isUndefined())
        continue;
      if (!First)
        Out += ',';
      First = false;
      jsonStringify(I, Value::str(I.strings().str(Key)), Out, Depth + 1);
      Out += ':';
      jsonStringify(I, *PV, Out, Depth + 1);
    }
    Out += '}';
    return;
  }
  }
}

namespace {
/// Tiny recursive-descent JSON parser for JSON.parse.
class JsonParser {
public:
  JsonParser(Interpreter &I, const std::string &S) : I(I), S(S) {}

  bool parse(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }
  bool literal(const char *Word) {
    size_t Len = std::string(Word).size();
    if (S.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }
  bool parseValue(Value &Out) {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == 'n' && literal("null")) {
      Out = Value::null();
      return true;
    }
    if (C == 't' && literal("true")) {
      Out = Value::boolean(true);
      return true;
    }
    if (C == 'f' && literal("false")) {
      Out = Value::boolean(false);
      return true;
    }
    if (C == '"')
      return parseString(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '{')
      return parseObject(Out);
    return parseNumber(Out);
  }
  bool parseString(Value &Out) {
    if (S[Pos] != '"')
      return false;
    ++Pos;
    std::string Str;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        Str.push_back(C);
        continue;
      }
      if (Pos >= S.size())
        return false;
      char E = S[Pos++];
      switch (E) {
      case 'n':
        Str.push_back('\n');
        break;
      case 't':
        Str.push_back('\t');
        break;
      case 'r':
        Str.push_back('\r');
        break;
      default:
        Str.push_back(E);
        break;
      }
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    Out = Value::str(std::move(Str));
    return true;
  }
  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out = Value::number(jsStringToNumber(S.substr(Start, Pos - Start)));
    return true;
  }
  bool parseArray(Value &Out) {
    ++Pos; // '['
    std::vector<Value> Elements;
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      Out = I.makeArray(std::move(Elements));
      return true;
    }
    while (true) {
      Value V;
      if (!parseValue(V))
        return false;
      Elements.push_back(std::move(V));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    skipWs();
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    ++Pos;
    Out = I.makeArray(std::move(Elements));
    return true;
  }
  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Object *O = I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
    O->setProto(I.protos().ObjectP);
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      Out = Value::object(O);
      return true;
    }
    while (true) {
      skipWs();
      Value Key;
      if (Pos >= S.size() || S[Pos] != '"' || !parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      Value V;
      if (!parseValue(V))
        return false;
      O->setOwn(I.intern(Key.asString()), V);
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    skipWs();
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    ++Pos;
    Out = Value::object(O);
    return true;
  }

  Interpreter &I;
  const std::string &S;
  size_t Pos = 0;
};
} // namespace

static void installJson(Interpreter &I) {
  Object *Json = I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  Json->setProto(I.protos().ObjectP);
  defineMethod(I, Json, "stringify",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 std::string Out;
                 jsonStringify(I, argAt(Args, 0), Out, 0);
                 return Value::str(std::move(Out));
               });
  defineMethod(I, Json, "parse",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 if (I.isProxyValue(Arg))
                   return I.proxyValue();
                 if (!Arg.isString())
                   return I.throwError("SyntaxError",
                                       "JSON.parse expects a string");
                 Value Out;
                 JsonParser P(I, Arg.asString());
                 if (!P.parse(Out))
                   return I.throwError("SyntaxError", "invalid JSON");
                 return Out;
               });
  I.globalEnv()->define(I.intern("JSON"), Value::object(Json));
}

//===----------------------------------------------------------------------===//
// Error constructors
//===----------------------------------------------------------------------===//

static void installErrors(Interpreter &I) {
  for (const char *Name :
       {"Error", "TypeError", "RangeError", "SyntaxError", "ReferenceError"}) {
    std::string Kind = Name;
    Object *Ctor = defineGlobalFn(
        I, Name,
        [Kind](Interpreter &I, const Value &ThisV,
               std::vector<Value> &Args) -> Completion {
          Value Msg = argAt(Args, 0);
          std::string Message =
              Msg.isUndefined() ? std::string() : I.toStringValue(Msg);
          // `new Error(m)` initializes the fresh instance; bare `Error(m)`
          // allocates one.
          Object *E;
          if (ThisV.isObject() && !ThisV.asObject()->isProxy() &&
              !ThisV.asObject()->isCallable()) {
            E = ThisV.asObject();
          } else {
            E = I.heap().newObject(ObjectClass::Error, SourceLoc::invalid());
            E->setProto(I.protos().ErrorP);
          }
          const auto &WK = I.context().WK;
          E->setOwn(WK.Name, Value::str(Kind));
          E->setOwn(WK.Message, Value::str(Message));
          E->setOwn(WK.Stack, Value::str(Kind + ": " + Message));
          return ThisV.isObject() && E == ThisV.asObject()
                     ? Value::undefined()
                     : Value::object(E);
        });
    // Give the constructor a prototype so `instanceof Error` works.
    Ctor->setOwn(I.context().SymPrototype, Value::object(I.protos().ErrorP));
  }
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

void jsai::installBuiltins(Interpreter &I) {
  BuiltinProtos &P = I.protos();
  Heap &H = I.heap();
  P.ObjectP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.FunctionP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.ArrayP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.StringP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.NumberP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.BooleanP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.ErrorP = H.newObject(ObjectClass::Plain, SourceLoc::invalid());
  P.FunctionP->setProto(P.ObjectP);
  P.ArrayP->setProto(P.ObjectP);
  P.StringP->setProto(P.ObjectP);
  P.NumberP->setProto(P.ObjectP);
  P.BooleanP->setProto(P.ObjectP);
  P.ErrorP->setProto(P.ObjectP);

  installObjectBuiltins(I);
  installArrayBuiltins(I);
  installStringBuiltins(I);
  installFunctionBuiltins(I);

  installConsole(I);
  installMath(I);
  installJson(I);
  installErrors(I);

  defineGlobalFn(I, "parseInt",
                 [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   if (I.isProxyValue(argAt(Args, 0)))
                     return I.proxyValue();
                   std::string S = I.toStringValue(argAt(Args, 0));
                   double Radix = I.toNumberValue(argAt(Args, 1));
                   int R = std::isnan(Radix) || Radix == 0 ? 10 : int(Radix);
                   char *End = nullptr;
                   long long V = std::strtoll(S.c_str(), &End, R);
                   if (End == S.c_str())
                     return Value::number(std::nan(""));
                   return Value::number(double(V));
                 });
  defineGlobalFn(I, "parseFloat",
                 [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   if (I.isProxyValue(argAt(Args, 0)))
                     return I.proxyValue();
                   std::string S = I.toStringValue(argAt(Args, 0));
                   char *End = nullptr;
                   double V = std::strtod(S.c_str(), &End);
                   if (End == S.c_str())
                     return Value::number(std::nan(""));
                   return Value::number(V);
                 });
  defineGlobalFn(I, "isNaN",
                 [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   return Value::boolean(
                       std::isnan(I.toNumberValue(argAt(Args, 0))));
                 });
  defineGlobalFn(I, "isFinite",
                 [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   return Value::boolean(
                       std::isfinite(I.toNumberValue(argAt(Args, 0))));
                 });
  I.globalEnv()->define(I.intern("NaN"), Value::number(std::nan("")));
  I.globalEnv()->define(I.intern("Infinity"), Value::number(HUGE_VAL));

  // Timers run their callback synchronously once — a deterministic mock
  // that still exposes the callback's behavior to both analyses.
  auto TimerFn = [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
    Value Cb = argAt(Args, 0);
    if (Cb.isObject() && Cb.asObject()->isCallable()) {
      Completion C =
          I.callValue(Cb, Value::undefined(), {}, I.currentCallSite());
      JSAI_PROPAGATE(C);
    }
    return Value::number(0);
  };
  defineGlobalFn(I, "setTimeout", TimerFn);
  defineGlobalFn(I, "setInterval", TimerFn);
  defineGlobalFn(I, "setImmediate", TimerFn);
  defineGlobalFn(I, "clearTimeout",
                 [](Interpreter &, const Value &,
                    std::vector<Value> &) -> Completion {
                   return Value::undefined();
                 });
  defineGlobalFn(I, "clearInterval",
                 [](Interpreter &, const Value &,
                    std::vector<Value> &) -> Completion {
                   return Value::undefined();
                 });

  // Indirect eval: runs in the global environment.
  defineGlobalFn(I, "eval",
                 [](Interpreter &I, const Value &,
                    std::vector<Value> &Args) -> Completion {
                   Value Code = argAt(Args, 0);
                   if (I.isProxyValue(Code))
                     return I.proxyValue();
                   if (!Code.isString())
                     return Code;
                   return I.runEval(Code.asString(), I.globalEnv(), nullptr,
                                    I.currentCallSite());
                 });

  // process (minimal Node model).
  Object *Process =
      I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  Process->setProto(P.ObjectP);
  Object *Env = I.heap().newObject(ObjectClass::Plain, SourceLoc::invalid());
  Env->setProto(P.ObjectP);
  Process->setOwn(I.intern("env"), Value::object(Env));
  Process->setOwn(I.intern("argv"), I.makeArray({Value::str("node"),
                                                 Value::str("main.js")}));
  Process->setOwn(I.intern("platform"), Value::str("linux"));
  defineMethod(I, Process, "exit",
               [](Interpreter &, const Value &,
                  std::vector<Value> &) -> Completion {
                 return Value::undefined(); // Sandboxed: never exits the host.
               });
  defineMethod(I, Process, "nextTick",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Cb = argAt(Args, 0);
                 if (Cb.isObject() && Cb.asObject()->isCallable())
                   return I.callValue(Cb, Value::undefined(), {},
                                      I.currentCallSite());
                 return Value::undefined();
               });
  defineMethod(I, Process, "cwd",
               [](Interpreter &, const Value &,
                  std::vector<Value> &) -> Completion {
                 return Value::str("/");
               });
  I.globalEnv()->define(I.intern("process"), Value::object(Process));

  installNodeBuiltins(I);
}
