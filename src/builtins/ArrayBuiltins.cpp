//===- ArrayBuiltins.cpp - Array constructor and prototype ------------------===//

#include "builtins/Builtins.h"
#include "builtins/BuiltinUtil.h"

#include <algorithm>

using namespace jsai;

/// \returns the element vector when \p V is array-like, else null.
static std::vector<Value> *elementsOf(const Value &V) {
  if (!V.isObject())
    return nullptr;
  Object *O = V.asObject();
  if (O->objectClass() != ObjectClass::Array &&
      O->objectClass() != ObjectClass::Arguments)
    return nullptr;
  return &O->elements();
}

/// Creates a builtin-result array whose allocation site is the current call
/// site, so the static analysis can model e.g. `xs.map(f)` results.
static Value resultArray(Interpreter &I, std::vector<Value> Elements) {
  Object *A = I.heap().newArray(I.currentCallSite(), std::move(Elements));
  A->setProto(I.protos().ArrayP);
  if (I.observer())
    I.observer()->onObjectCreated(A);
  return Value::object(A);
}

void jsai::installArrayBuiltins(Interpreter &I) {
  Object *Ctor = defineGlobalFn(
      I, "Array",
      [](Interpreter &I, const Value &,
         std::vector<Value> &Args) -> Completion {
        if (Args.size() == 1 && Args[0].isNumber()) {
          std::vector<Value> Elements(size_t(Args[0].asNumber()));
          return resultArray(I, std::move(Elements));
        }
        return resultArray(I, Args);
      });
  Ctor->setOwn(I.context().SymPrototype, Value::object(I.protos().ArrayP));
  defineMethod(I, Ctor, "isArray",
               [](Interpreter &, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 Value Arg = argAt(Args, 0);
                 return Value::boolean(
                     Arg.isObject() &&
                     Arg.asObject()->objectClass() == ObjectClass::Array);
               });
  defineMethod(I, Ctor, "from",
               [](Interpreter &I, const Value &,
                  std::vector<Value> &Args) -> Completion {
                 if (auto *Els = elementsOf(argAt(Args, 0)))
                   return resultArray(I, *Els);
                 if (argAt(Args, 0).isString()) {
                   std::vector<Value> Out;
                   for (char C : argAt(Args, 0).asString())
                     Out.push_back(Value::str(std::string(1, C)));
                   return resultArray(I, std::move(Out));
                 }
                 return resultArray(I, {});
               });

  Object *Proto = I.protos().ArrayP;

  defineMethod(I, Proto, "push",
               [](Interpreter &I, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 auto *Els = elementsOf(ThisV);
                 if (!Els)
                   return I.isProxyValue(ThisV)
                              ? Completion(I.proxyValue())
                              : Completion(Value::number(0));
                 for (const Value &A : Args)
                   Els->push_back(A);
                 return Value::number(double(Els->size()));
               });
  defineMethod(I, Proto, "pop",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 auto *Els = elementsOf(ThisV);
                 if (!Els || Els->empty())
                   return Value::undefined();
                 Value Last = Els->back();
                 Els->pop_back();
                 return Last;
               });
  defineMethod(I, Proto, "shift",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 auto *Els = elementsOf(ThisV);
                 if (!Els || Els->empty())
                   return Value::undefined();
                 Value First = Els->front();
                 Els->erase(Els->begin());
                 return First;
               });
  defineMethod(I, Proto, "unshift",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &Args) -> Completion {
                 auto *Els = elementsOf(ThisV);
                 if (!Els)
                   return Value::number(0);
                 Els->insert(Els->begin(), Args.begin(), Args.end());
                 return Value::number(double(Els->size()));
               });

  // Iteration methods share the callback-invocation shape.
  defineMethod(
      I, Proto, "forEach",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::undefined();
        Value Cb = argAt(Args, 0);
        Value ThisArg = argAt(Args, 1);
        std::vector<Value> Snapshot = *Els;
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              Cb, ThisArg,
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
        }
        return Value::undefined();
      });
  defineMethod(
      I, Proto, "map",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return resultArray(I, {});
        Value Cb = argAt(Args, 0);
        Value ThisArg = argAt(Args, 1);
        std::vector<Value> Snapshot = *Els;
        std::vector<Value> Out;
        Out.reserve(Snapshot.size());
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              Cb, ThisArg,
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          Out.push_back(C.V);
        }
        return resultArray(I, std::move(Out));
      });
  defineMethod(
      I, Proto, "filter",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return resultArray(I, {});
        Value Cb = argAt(Args, 0);
        std::vector<Value> Snapshot = *Els;
        std::vector<Value> Out;
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              Cb, argAt(Args, 1),
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          if (C.V.toBoolean())
            Out.push_back(Snapshot[Idx]);
        }
        return resultArray(I, std::move(Out));
      });
  defineMethod(
      I, Proto, "some",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::boolean(false);
        std::vector<Value> Snapshot = *Els;
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              argAt(Args, 0), argAt(Args, 1),
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          if (C.V.toBoolean())
            return Value::boolean(true);
        }
        return Value::boolean(false);
      });
  defineMethod(
      I, Proto, "every",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::boolean(true);
        std::vector<Value> Snapshot = *Els;
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              argAt(Args, 0), argAt(Args, 1),
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          if (!C.V.toBoolean())
            return Value::boolean(false);
        }
        return Value::boolean(true);
      });
  defineMethod(
      I, Proto, "find",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::undefined();
        std::vector<Value> Snapshot = *Els;
        for (size_t Idx = 0; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              argAt(Args, 0), argAt(Args, 1),
              {Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          if (C.V.toBoolean())
            return Snapshot[Idx];
        }
        return Value::undefined();
      });
  defineMethod(
      I, Proto, "reduce",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return argAt(Args, 1);
        Value Cb = argAt(Args, 0);
        std::vector<Value> Snapshot = *Els;
        size_t Idx = 0;
        Value Acc;
        if (Args.size() >= 2) {
          Acc = Args[1];
        } else {
          if (Snapshot.empty())
            return I.throwError("TypeError",
                                "reduce of empty array with no initial value");
          Acc = Snapshot[0];
          Idx = 1;
        }
        for (; Idx != Snapshot.size(); ++Idx) {
          Completion C = I.callValue(
              Cb, Value::undefined(),
              {Acc, Snapshot[Idx], Value::number(double(Idx)), ThisV},
              I.currentCallSite());
          JSAI_PROPAGATE(C);
          Acc = C.V;
        }
        return Acc;
      });

  defineMethod(
      I, Proto, "slice",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return resultArray(I, {});
        double Len = double(Els->size());
        double Start = Args.empty() ? 0 : I.toNumberValue(Args[0]);
        double End = Args.size() < 2 || Args[1].isUndefined()
                         ? Len
                         : I.toNumberValue(Args[1]);
        if (Start < 0)
          Start = std::max(0.0, Len + Start);
        if (End < 0)
          End = std::max(0.0, Len + End);
        End = std::min(End, Len);
        std::vector<Value> Out;
        for (size_t Idx = size_t(Start); Idx < size_t(End); ++Idx)
          Out.push_back((*Els)[Idx]);
        return resultArray(I, std::move(Out));
      });
  defineMethod(
      I, Proto, "splice",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return resultArray(I, {});
        double Len = double(Els->size());
        double Start = Args.empty() ? 0 : I.toNumberValue(Args[0]);
        if (Start < 0)
          Start = std::max(0.0, Len + Start);
        Start = std::min(Start, Len);
        double Count = Args.size() < 2 ? Len - Start
                                       : std::max(0.0, I.toNumberValue(Args[1]));
        Count = std::min(Count, Len - Start);
        auto First = Els->begin() + long(Start);
        std::vector<Value> Removed(First, First + long(Count));
        std::vector<Value> Inserted(Args.begin() + std::min<size_t>(2, Args.size()),
                                    Args.end());
        Els->erase(First, First + long(Count));
        Els->insert(Els->begin() + long(Start), Inserted.begin(),
                    Inserted.end());
        return resultArray(I, std::move(Removed));
      });
  defineMethod(
      I, Proto, "concat",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        std::vector<Value> Out;
        if (auto *Els = elementsOf(ThisV))
          Out = *Els;
        for (const Value &A : Args) {
          if (auto *Els = elementsOf(A))
            Out.insert(Out.end(), Els->begin(), Els->end());
          else
            Out.push_back(A);
        }
        return resultArray(I, std::move(Out));
      });
  defineMethod(
      I, Proto, "join",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::str("");
        std::string Sep =
            Args.empty() || Args[0].isUndefined() ? "," : I.toStringValue(Args[0]);
        std::string Out;
        for (size_t Idx = 0; Idx != Els->size(); ++Idx) {
          if (Idx)
            Out += Sep;
          if (!(*Els)[Idx].isNullish())
            Out += I.toStringValue((*Els)[Idx]);
        }
        return Value::str(std::move(Out));
      });
  defineMethod(
      I, Proto, "indexOf",
      [](Interpreter &, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::number(-1);
        for (size_t Idx = 0; Idx != Els->size(); ++Idx)
          if (Value::strictEquals((*Els)[Idx], argAt(Args, 0)))
            return Value::number(double(Idx));
        return Value::number(-1);
      });
  defineMethod(
      I, Proto, "includes",
      [](Interpreter &, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return Value::boolean(false);
        for (const Value &El : *Els)
          if (Value::strictEquals(El, argAt(Args, 0)))
            return Value::boolean(true);
        return Value::boolean(false);
      });
  defineMethod(I, Proto, "reverse",
               [](Interpreter &, const Value &ThisV,
                  std::vector<Value> &) -> Completion {
                 if (auto *Els = elementsOf(ThisV))
                   std::reverse(Els->begin(), Els->end());
                 return ThisV;
               });
  defineMethod(
      I, Proto, "sort",
      [](Interpreter &I, const Value &ThisV, std::vector<Value> &Args)
          -> Completion {
        auto *Els = elementsOf(ThisV);
        if (!Els)
          return ThisV;
        Value Cb = argAt(Args, 0);
        bool HasCb = Cb.isObject() && Cb.asObject()->isCallable();
        // Insertion sort: stable, deterministic, and tolerant of callbacks
        // that themselves run arbitrary code.
        for (size_t J = 1; J < Els->size(); ++J) {
          Value Key = (*Els)[J];
          size_t K = J;
          while (K > 0) {
            bool Before;
            if (HasCb) {
              Completion C =
                  I.callValue(Cb, Value::undefined(), {(*Els)[K - 1], Key},
                              I.currentCallSite());
              JSAI_PROPAGATE(C);
              Before = I.toNumberValue(C.V) > 0;
            } else {
              Before =
                  I.toStringValue((*Els)[K - 1]) > I.toStringValue(Key);
            }
            if (!Before)
              break;
            (*Els)[K] = (*Els)[K - 1];
            --K;
          }
          (*Els)[K] = Key;
        }
        return ThisV;
      });
}
